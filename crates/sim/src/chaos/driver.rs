//! The resilient epoch driver: replay a [`FaultSchedule`] against a
//! working copy of the scenario's topology while driving a placement
//! policy, and account for every degradation instead of panicking.
//!
//! Each epoch:
//!
//! 1. apply the epoch's repairs and faults to the topology copy (a
//!    [`FaultEvent::ControllerCrash`] kills the controller here: its
//!    in-memory state is discarded and rebuilt from the write-ahead log);
//! 2. plan a placement, walking the fallback chain on [`PlaceError`]:
//!    primary → mildly relaxed → relaxed → E-PVM spill → shed the
//!    lowest-priority (highest-index) containers until the rest fit;
//! 3. reconcile the persistent [`ContainerRuntime`] toward the plan with
//!    the fault-aware migration executor (retries, rollbacks, cold
//!    restarts off dead servers), one logged *unit* at a time;
//! 4. meter power/TCT on the placement that *actually* materialized.
//!
//! The driver is a [`ChaosDriver`] value so a run can be stopped at any
//! epoch boundary or between migration units ("the controller process
//! died"), and [`ChaosDriver::resume`] rebuilds an equivalent driver from
//! the surviving WAL bytes — the recovery drill asserts the resumed run's
//! final placement is byte-identical to an uninterrupted one.
//!
//! What is controller memory vs. the world: the RNG cursor, the planner,
//! the WAL, and the epoch cursor die with the controller. The topology
//! (failed servers, degraded uplinks) is the physical world and is
//! reconstructed by replaying the fault schedule. The container runtime
//! and power gate are the *data plane* — they keep running while the
//! controller is down; [`ChaosDriver::resume`] accepts them if they
//! survived, or rebuilds the controller's view of them from the log.

use std::collections::{BTreeMap, BTreeSet};

use goldilocks_cluster::{
    anti_entropy, execute_unit, recover, ClusterError, ClusterState, ContainerRuntime, Disposition,
    LifecycleError, MigrationStats, PowerGate, Wal, WalEvent,
};
use goldilocks_placement::{EPvm, PlaceError, Placement, Placer};
use goldilocks_topology::{DcTree, NodeId, Resources, ServerId};
use goldilocks_workload::Workload;

use super::plan::{ChaosRng, FaultEvent, FaultSchedule};
use crate::epoch::{epoch_workload, meter_epoch, Policy, Scenario};

/// Salt xor-ed into the run seed for the migration-roll stream, keeping it
/// decorrelated from the fault-schedule stream under the same seed.
const ROLL_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// A full [`ClusterState`] snapshot is appended after every this many
/// committed epochs, bounding replay length on recovery.
const SNAPSHOT_EVERY: usize = 8;

/// Upper bound on anti-entropy repairs applied in one recovery round.
const MAX_REPAIRS_PER_ROUND: usize = 64;

/// Which rung of the degradation ladder produced the epoch's placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FallbackLevel {
    /// The policy's primary configuration.
    Primary,
    /// Mildly relaxed caps (Goldilocks at 80 % PEE).
    MildRelaxed,
    /// Fully relaxed caps (pack to the maximum).
    Relaxed,
    /// E-PVM spreading at 100 % — spill across every healthy server.
    Spill,
    /// Lowest-priority containers shed until the remainder fits.
    Shed,
}

impl FallbackLevel {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FallbackLevel::Primary => "primary",
            FallbackLevel::MildRelaxed => "mild-relaxed",
            FallbackLevel::Relaxed => "relaxed",
            FallbackLevel::Spill => "spill",
            FallbackLevel::Shed => "shed",
        }
    }

    /// Stable one-byte tag used in WAL `Decision` records.
    pub fn code(&self) -> u8 {
        match self {
            FallbackLevel::Primary => 0,
            FallbackLevel::MildRelaxed => 1,
            FallbackLevel::Relaxed => 2,
            FallbackLevel::Spill => 3,
            FallbackLevel::Shed => 4,
        }
    }

    /// Inverse of [`FallbackLevel::code`]; unknown tags map to `Primary`
    /// (they can only come from a newer log format).
    pub fn from_code(code: u8) -> Self {
        match code {
            1 => FallbackLevel::MildRelaxed,
            2 => FallbackLevel::Relaxed,
            3 => FallbackLevel::Spill,
            4 => FallbackLevel::Shed,
            _ => FallbackLevel::Primary,
        }
    }
}

/// Errors a chaos run can surface. Placement shortfalls are absorbed by the
/// fallback chain; what remains are genuine driver bugs or corrupt logs.
#[derive(Debug)]
pub enum ChaosError {
    /// Even the shed ladder could not produce a placement.
    Place(PlaceError),
    /// A cluster control-plane failure: illegal transition stream, invalid
    /// migration model, or an unrecoverable WAL.
    Cluster(ClusterError),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Place(e) => write!(f, "placement failed beyond all fallbacks: {e}"),
            ChaosError::Cluster(e) => write!(f, "cluster control plane: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<PlaceError> for ChaosError {
    fn from(e: PlaceError) -> Self {
        ChaosError::Place(e)
    }
}

impl From<ClusterError> for ChaosError {
    fn from(e: ClusterError) -> Self {
        ChaosError::Cluster(e)
    }
}

impl From<LifecycleError> for ChaosError {
    fn from(e: LifecycleError) -> Self {
        ChaosError::Cluster(ClusterError::Lifecycle(e))
    }
}

/// Metrics for one epoch of a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosEpochRecord {
    /// Epoch index.
    pub epoch: usize,
    /// Faults injected this epoch.
    pub faults: usize,
    /// Repairs landing this epoch.
    pub repairs: usize,
    /// Servers eligible for placement after this epoch's events.
    pub healthy_servers: usize,
    /// Powered-on servers.
    pub active_servers: usize,
    /// Server power draw, W.
    pub server_watts: f64,
    /// Network power draw, W.
    pub switch_watts: f64,
    /// Boot-energy surcharge, W (amortized).
    pub boot_watts: f64,
    /// Mean task completion time over served flows, ms.
    pub tct_ms: f64,
    /// Mean CPU utilization over active servers.
    pub mean_cpu_util: f64,
    /// Which fallback rung produced the placement.
    pub fallback: FallbackLevel,
    /// Containers the epoch demanded.
    pub demanded: usize,
    /// Containers actually running after reconciliation.
    pub served: usize,
    /// Containers shed by the planner this epoch.
    pub shed: usize,
    /// Migration execution counters.
    pub migration: MigrationStats,
    /// True when the controller recovered from its WAL during (or right
    /// before) this epoch.
    pub recovered: bool,
}

impl ChaosEpochRecord {
    /// Total power draw, W.
    pub fn total_watts(&self) -> f64 {
        self.server_watts + self.switch_watts + self.boot_watts
    }
}

/// Aggregate resilience metrics of a chaos run.
#[derive(Clone, Debug, Default)]
pub struct ResilienceSummary {
    /// Epochs simulated.
    pub epochs: usize,
    /// Faults injected.
    pub fault_events: usize,
    /// Repairs observed.
    pub repair_events: usize,
    /// Mean time to repair, epochs (over repaired faults; 0 when none).
    pub mttr_epochs: f64,
    /// Faults still open when the run ended.
    pub unrepaired_faults: usize,
    /// Served container-epochs over demanded container-epochs.
    pub availability: f64,
    /// Container-epochs lost to shedding.
    pub shed_container_epochs: usize,
    /// Epochs that needed any fallback rung.
    pub fallback_epochs: usize,
    /// Epochs that had to shed load.
    pub shed_epochs: usize,
    /// Voluntary migrations attempted / completed.
    pub migrations_attempted: usize,
    /// Voluntary migrations that landed.
    pub migrations_completed: usize,
    /// Individual failed migration attempts (each rolled back).
    pub failed_migration_attempts: usize,
    /// Migration retries performed.
    pub migration_retries: usize,
    /// Migrations abandoned after exhausting retries.
    pub migrations_abandoned: usize,
    /// Cold restarts forced by dead source servers.
    pub forced_restarts: usize,
    /// Times the controller recovered from its WAL.
    pub controller_recoveries: usize,
    /// Mean total power draw, W.
    pub avg_total_watts: f64,
    /// Mean TCT, ms.
    pub avg_tct_ms: f64,
}

/// One policy's chaos run.
#[derive(Clone, Debug)]
pub struct ChaosRun {
    /// Policy name.
    pub policy: String,
    /// Migration-roll seed the run used.
    pub seed: u64,
    /// Per-epoch records.
    pub records: Vec<ChaosEpochRecord>,
    /// Aggregates.
    pub summary: ResilienceSummary,
}

/// Open-fault bookkeeping key for MTTR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum FaultKey {
    Server(usize),
    Uplink(usize),
    Switch(usize),
    Straggler(usize),
    Storm,
}

/// The in-flight epoch a resumed driver picks back up.
struct PendingEpoch {
    /// The logged decision, if the crash happened after planning.
    intended: Option<Placement>,
    fallback: FallbackLevel,
    shed: usize,
    /// Containers whose unit already resolved before the crash — their
    /// outcome is final and their failure rolls were already consumed.
    skip: BTreeSet<usize>,
}

/// A crash-recoverable chaos run in progress. See the module docs for the
/// controller-memory vs. data-plane split.
pub struct ChaosDriver<'a> {
    scenario: &'a Scenario,
    policy: &'a Policy,
    schedule: &'a FaultSchedule,
    seed: u64,
    reservations: Vec<Resources>,

    // The physical world: survives controller crashes, reconstructed by
    // replaying the fault schedule on resume.
    tree: DcTree,
    nominal_resources: Vec<Resources>,
    nominal_uplink: BTreeMap<NodeId, f64>,
    switch_victims: BTreeMap<NodeId, Vec<ServerId>>,
    storm_prob: Option<f64>,
    open_faults: BTreeMap<FaultKey, usize>,
    mttr_samples: Vec<usize>,

    // The data plane: keeps running while the controller is down.
    runtime: ContainerRuntime,
    gate: PowerGate,

    // Controller memory: dies with the process, rebuilt from the WAL.
    placer: Box<dyn Placer>,
    rolls: ChaosRng,
    wal: Wal,
    next_epoch: usize,
    pending: Option<PendingEpoch>,

    // The experimenter's measurements (outside the simulated controller).
    records: Vec<ChaosEpochRecord>,
    recoveries: usize,
    recovered_flag: bool,
    halted: bool,

    // Reusable metering scratch (outside the simulated controller: pure
    // measurement memory, carries no state the WAL would need to rebuild).
    meter_ws: crate::metering::MeteringWorkspace,
}

impl<'a> ChaosDriver<'a> {
    /// A fresh driver at epoch 0 with an empty WAL.
    pub fn new(
        scenario: &'a Scenario,
        policy: &'a Policy,
        schedule: &'a FaultSchedule,
        seed: u64,
    ) -> Self {
        let tree = scenario.tree.clone();
        let nominal_resources: Vec<Resources> = (0..tree.server_count())
            .map(|s| tree.server(ServerId(s)).resources)
            .collect();
        let nominal_uplink: BTreeMap<NodeId, f64> = tree
            .rack_nodes()
            .into_iter()
            .map(|n| (n, tree.uplink_mbps(n)))
            .collect();
        let reservations: Vec<Resources> = scenario
            .base
            .containers
            .iter()
            .map(|c| {
                Resources::new(
                    c.demand.cpu * scenario.reservation_factor,
                    c.demand.memory_gb,
                    c.demand.network_mbps,
                )
            })
            .collect();
        let placer = policy.build(&scenario.power.server, reservations.clone());
        let gate = PowerGate::all_on(tree.server_count());
        ChaosDriver {
            scenario,
            policy,
            schedule,
            seed,
            reservations,
            tree,
            nominal_resources,
            nominal_uplink,
            switch_victims: BTreeMap::new(),
            storm_prob: None,
            open_faults: BTreeMap::new(),
            mttr_samples: Vec::new(),
            runtime: ContainerRuntime::new(),
            gate,
            placer,
            rolls: ChaosRng::new(seed ^ ROLL_SALT),
            wal: Wal::new(),
            next_epoch: 0,
            pending: None,
            records: Vec::new(),
            recoveries: 0,
            recovered_flag: false,
            halted: false,
            meter_ws: crate::metering::MeteringWorkspace::new(),
        }
    }

    /// Rebuilds a driver from the WAL bytes a crashed controller left
    /// behind. `data_plane` is the surviving container runtime and power
    /// gate if the cluster outlived the controller; `None` models full
    /// cold recovery, where the controller's replayed view of the data
    /// plane becomes the rebuilt state.
    ///
    /// The physical world (fault state of the topology) is reconstructed
    /// by replaying the schedule's events for every epoch the dead
    /// controller had already entered. Per-epoch records from before the
    /// crash are measurement, not controller state — they are gone; the
    /// resumed run reports only the epochs it executes.
    ///
    /// # Errors
    ///
    /// Returns [`ChaosError::Cluster`] when the WAL's intact prefix is
    /// internally inconsistent or an anti-entropy repair is illegal.
    pub fn resume(
        scenario: &'a Scenario,
        policy: &'a Policy,
        schedule: &'a FaultSchedule,
        seed: u64,
        wal_bytes: &[u8],
        data_plane: Option<(ContainerRuntime, PowerGate)>,
    ) -> Result<Self, ChaosError> {
        let intact = Wal::decode(wal_bytes).intact_bytes;
        let rec = recover(wal_bytes)?;
        let mut d = ChaosDriver::new(scenario, policy, schedule, seed);

        // Replay the physical world: events for every epoch the dead
        // controller had entered were already applied to the cluster.
        let epochs_entered = match (&rec.open, rec.state.committed_epoch) {
            (Some(o), _) => o.epoch as usize + 1,
            (None, Some(c)) => c as usize + 1,
            (None, None) => 0,
        };
        for e in 0..epochs_entered {
            d.apply_epoch_events(e, false)?;
        }
        d.next_epoch = if rec.open.is_some() {
            epochs_entered - 1
        } else {
            epochs_entered
        };

        match data_plane {
            Some((runtime, gate)) => {
                d.runtime = runtime;
                d.gate = gate;
            }
            None => {
                d.runtime = rec.runtime();
                d.gate = match &rec.state.gate {
                    Some(states) => PowerGate::from_states(states.clone()),
                    None => PowerGate::all_on(scenario.tree.server_count()),
                };
            }
        }
        d.rolls = ChaosRng::new(rec.rng_state().unwrap_or(seed ^ ROLL_SALT));
        d.wal = Wal::from_bytes(wal_bytes[..intact].to_vec());

        // Anti-entropy: realign the data plane with the controller's
        // replayed view. A torn tail means the last few applied commands
        // were never logged; the controller is authoritative, so they are
        // repaired back.
        let repairs = d.anti_entropy_round(&rec.state)?;
        if !repairs.is_empty() && rec.open.is_some() {
            // Inside an open epoch the repairs are logged as a unit so a
            // second recovery replays them into its view.
            d.wal.append(&WalEvent::Unit {
                container: u64::MAX,
                disposition: Disposition::Repair,
                rng_state: d.rolls.state(),
                transitions: repairs,
            });
        }
        if rec.open.is_none() {
            // At a boundary, re-anchor the log with a snapshot of the
            // recovered (and possibly repaired) state.
            d.wal.append(&WalEvent::Snapshot(ClusterState::capture(
                rec.state.committed_epoch,
                &rec.state.intended,
                &d.runtime,
                Some(d.gate.states()),
                Some(d.rolls.state()),
            )));
        }

        if let Some(open) = rec.open {
            d.pending = Some(PendingEpoch {
                intended: open.intended,
                fallback: FallbackLevel::from_code(open.fallback),
                shed: open.shed as usize,
                skip: open
                    .resolved
                    .iter()
                    .map(|(c, _)| *c)
                    .filter(|c| *c != u64::MAX)
                    .map(|c| c as usize)
                    .collect(),
            });
        }
        d.recoveries = 1;
        d.recovered_flag = true;
        Ok(d)
    }

    /// The epoch the next [`ChaosDriver::step_epoch`] call will execute.
    pub fn next_epoch(&self) -> usize {
        self.next_epoch
    }

    /// True when every scenario epoch has committed.
    pub fn is_done(&self) -> bool {
        self.next_epoch >= self.scenario.epochs.len()
    }

    /// Times the controller recovered from its WAL (in-band crash faults
    /// plus an initial [`ChaosDriver::resume`]).
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// The raw WAL bytes — what a crash leaves behind.
    pub fn wal_bytes(&self) -> &[u8] {
        self.wal.bytes()
    }

    /// A copy of the data plane (container runtime + power gate), for
    /// simulating a controller-only crash where the cluster survives.
    pub fn data_plane(&self) -> (ContainerRuntime, PowerGate) {
        (self.runtime.clone(), self.gate.clone())
    }

    /// The materialized assignment of the first `containers` containers.
    pub fn assignment(&self, containers: usize) -> Vec<Option<ServerId>> {
        (0..containers).map(|c| self.runtime.host_of(c)).collect()
    }

    /// Executes one epoch. With `stop_after_units: Some(n)` the controller
    /// "crashes" after `n` migration units: the epoch is left open in the
    /// WAL, the driver halts, and `Ok(false)` is returned — grab
    /// [`ChaosDriver::wal_bytes`] and [`ChaosDriver::resume`]. Returns
    /// `Ok(true)` when the epoch committed (fewer than `n` units existed).
    ///
    /// # Errors
    ///
    /// Only on driver bugs: an illegal transition stream, or a placement
    /// failure that survives every fallback rung.
    ///
    /// # Panics
    ///
    /// Panics if the run is already done or was halted by a simulated
    /// crash.
    pub fn step_epoch(&mut self, stop_after_units: Option<usize>) -> Result<bool, ChaosError> {
        assert!(!self.halted, "driver crashed; resume from its WAL");
        assert!(!self.is_done(), "run already complete");
        let e = self.next_epoch;
        let pending = self.pending.take();

        let (faults, repairs) = if pending.is_some() {
            // A resumed epoch: its events already hit the world before the
            // crash (replayed in resume()); the counts belong to the lost
            // record.
            (0, 0)
        } else {
            self.apply_epoch_events(e, true)?
        };

        let w = epoch_workload(self.scenario, e);

        let mut skip = BTreeSet::new();
        let (target, fallback, shed) = match pending {
            Some(p) => {
                skip = p.skip;
                match p.intended {
                    // EpochBegin and Decision are already in the log.
                    Some(intended) => (intended, p.fallback, p.shed),
                    None => {
                        // Crash landed between EpochBegin and Decision:
                        // plan now (planning consumes no rolls) and log it.
                        let (t, f, s) = place_with_fallbacks(
                            self.policy,
                            &mut self.placer,
                            self.scenario,
                            &self.reservations,
                            &w,
                            &self.tree,
                        )?;
                        self.wal.append(&WalEvent::Decision {
                            epoch: e as u64,
                            fallback: f.code(),
                            shed: s as u64,
                            intended: t.clone(),
                        });
                        (t, f, s)
                    }
                }
            }
            None => {
                self.wal.append(&WalEvent::EpochBegin {
                    epoch: e as u64,
                    rng_state: self.rolls.state(),
                });
                let (t, f, s) = place_with_fallbacks(
                    self.policy,
                    &mut self.placer,
                    self.scenario,
                    &self.reservations,
                    &w,
                    &self.tree,
                )?;
                self.wal.append(&WalEvent::Decision {
                    epoch: e as u64,
                    fallback: f.code(),
                    shed: s as u64,
                    intended: t.clone(),
                });
                (t, f, s)
            }
        };

        let mut model = self.scenario.migration;
        if let Some(p) = self.storm_prob {
            model.failure_prob = model.failure_prob.max(p);
        }

        let mut stats = MigrationStats::default();
        let mut executed = 0usize;
        for t in self.runtime.reconcile(&target) {
            let container = match t {
                goldilocks_cluster::Transition::Start { container, .. }
                | goldilocks_cluster::Transition::Migrate { container, .. }
                | goldilocks_cluster::Transition::Stop { container, .. } => container,
            };
            if skip.contains(&container) {
                continue;
            }
            if stop_after_units.is_some_and(|limit| executed >= limit) {
                // Simulated controller death between units: the epoch
                // stays open in the WAL and this driver is dead.
                self.halted = true;
                return Ok(false);
            }
            let unit = {
                let tree = &self.tree;
                let rolls = &mut self.rolls;
                execute_unit(
                    &mut self.runtime,
                    t,
                    &w,
                    &model,
                    &|s| tree.server(s).failed,
                    &mut || rolls.uniform(),
                )?
            };
            stats.absorb(&unit.stats);
            self.wal.append(&WalEvent::Unit {
                container: unit.container as u64,
                disposition: unit.disposition,
                rng_state: self.rolls.state(),
                transitions: unit.transitions,
            });
            executed += 1;
        }

        // The placement that materialized: abandoned migrations stayed on
        // their source, shed containers are not running.
        let effective = Placement {
            assignment: (0..w.len()).map(|c| self.runtime.host_of(c)).collect(),
        };

        // Power gating on the materialized active set.
        let active = effective.active_servers();
        let desired: Vec<bool> = (0..self.tree.server_count())
            .map(|sid| active.contains(&ServerId(sid)))
            .collect();
        let booting_before: Vec<bool> = (0..self.gate.len())
            .map(|sid| !self.gate.is_ready(sid))
            .collect();
        self.gate.step(&desired, self.scenario.epoch_seconds as u32);
        let boot_watts: f64 = desired
            .iter()
            .enumerate()
            .filter(|(sid, on)| **on && booting_before[*sid])
            .map(|_| {
                let frac = (self.gate.boot_seconds as f64 / self.scenario.epoch_seconds).min(1.0);
                self.scenario.power.server.peak_watts * self.gate.boot_power_frac * frac
            })
            .sum();

        self.wal.append(&WalEvent::EpochCommit {
            epoch: e as u64,
            rng_state: self.rolls.state(),
            gate: self.gate.states().to_vec(),
        });
        if (e + 1).is_multiple_of(SNAPSHOT_EVERY) {
            self.wal.append(&WalEvent::Snapshot(ClusterState::capture(
                Some(e as u64),
                &target,
                &self.runtime,
                Some(self.gate.states()),
                Some(self.rolls.state()),
            )));
        }

        let metrics = meter_epoch(
            self.scenario,
            &w,
            &effective,
            &self.tree,
            &goldilocks_partition::ParallelConfig::sequential(),
            &mut self.meter_ws,
        );
        let served = effective.assignment.iter().filter(|a| a.is_some()).count();
        self.records.push(ChaosEpochRecord {
            epoch: e,
            faults,
            repairs,
            healthy_servers: self.tree.healthy_servers().len(),
            active_servers: metrics.sample.active_servers,
            server_watts: metrics.sample.server_watts,
            switch_watts: metrics.sample.switch_watts,
            boot_watts,
            tct_ms: metrics.tct_ms,
            mean_cpu_util: metrics.mean_cpu_util,
            fallback,
            demanded: w.len(),
            served,
            shed,
            migration: stats,
            recovered: std::mem::take(&mut self.recovered_flag),
        });
        self.next_epoch = e + 1;
        Ok(true)
    }

    /// Runs full epochs until `epoch` is the next to execute.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ChaosError`] from [`ChaosDriver::step_epoch`].
    pub fn run_to(&mut self, epoch: usize) -> Result<(), ChaosError> {
        while self.next_epoch < epoch.min(self.scenario.epochs.len()) {
            self.step_epoch(None)?;
        }
        Ok(())
    }

    /// Runs every remaining epoch.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ChaosError`] from [`ChaosDriver::step_epoch`].
    pub fn run_remaining(&mut self) -> Result<(), ChaosError> {
        while !self.is_done() {
            self.step_epoch(None)?;
        }
        Ok(())
    }

    /// Consumes the driver into its run report.
    pub fn finish(self) -> ChaosRun {
        let summary = summarize(
            &self.records,
            &self.mttr_samples,
            self.open_faults.len(),
            self.recoveries,
        );
        ChaosRun {
            policy: self.policy.name().to_string(),
            seed: self.seed,
            records: self.records,
            summary,
        }
    }

    /// Applies epoch `e`'s schedule events to the physical world. With
    /// `live: false` (resume replay) controller crashes are skipped — they
    /// only touch controller memory, which the caller is rebuilding anyway.
    fn apply_epoch_events(&mut self, e: usize, live: bool) -> Result<(usize, usize), ChaosError> {
        let schedule: &'a FaultSchedule = self.schedule;
        let mut faults = 0usize;
        let mut repairs = 0usize;
        for ev in schedule.events_at(e) {
            if ev.is_repair() {
                repairs += 1;
            } else {
                faults += 1;
            }
            match *ev {
                FaultEvent::ServerCrash(s) => {
                    self.tree.fail_server(s);
                    self.open_faults.insert(FaultKey::Server(s.0), e);
                }
                FaultEvent::ServerRestore(s) => {
                    self.tree.restore_server(s);
                    self.tree
                        .set_server_resources(s, self.nominal_resources[s.0]);
                    self.close_fault(FaultKey::Server(s.0), e);
                }
                FaultEvent::UplinkDegrade { node, factor } => {
                    let base = self
                        .nominal_uplink
                        .get(&node)
                        .copied()
                        .unwrap_or_else(|| self.tree.uplink_mbps(node));
                    self.tree.set_uplink_mbps(node, base * factor);
                    self.open_faults.insert(FaultKey::Uplink(node.0), e);
                }
                FaultEvent::UplinkRepair(node) => {
                    if let Some(&base) = self.nominal_uplink.get(&node) {
                        self.tree.set_uplink_mbps(node, base);
                    }
                    self.close_fault(FaultKey::Uplink(node.0), e);
                }
                FaultEvent::SwitchFail(node) => {
                    let victims: Vec<ServerId> = self
                        .tree
                        .servers_under(node)
                        .into_iter()
                        .filter(|s| !self.tree.server(*s).failed)
                        .collect();
                    for &s in &victims {
                        self.tree.fail_server(s);
                    }
                    self.switch_victims.insert(node, victims);
                    self.open_faults.insert(FaultKey::Switch(node.0), e);
                }
                FaultEvent::SwitchRepair(node) => {
                    for s in self.switch_victims.remove(&node).unwrap_or_default() {
                        self.tree.restore_server(s);
                    }
                    self.close_fault(FaultKey::Switch(node.0), e);
                }
                FaultEvent::HeteroReplace { server, scale } => {
                    // Permanent: the replacement hardware becomes nominal.
                    self.nominal_resources[server.0] =
                        self.nominal_resources[server.0].scaled(scale);
                    self.tree
                        .set_server_resources(server, self.nominal_resources[server.0]);
                }
                FaultEvent::Straggler { server, slowdown } => {
                    self.tree.set_server_resources(
                        server,
                        self.nominal_resources[server.0].scaled(slowdown),
                    );
                    self.open_faults.insert(FaultKey::Straggler(server.0), e);
                }
                FaultEvent::StragglerRecover(s) => {
                    self.tree
                        .set_server_resources(s, self.nominal_resources[s.0]);
                    self.close_fault(FaultKey::Straggler(s.0), e);
                }
                FaultEvent::MigrationStorm { failure_prob } => {
                    self.storm_prob = Some(failure_prob);
                    self.open_faults.insert(FaultKey::Storm, e);
                }
                FaultEvent::MigrationStormEnd => {
                    self.storm_prob = None;
                    self.close_fault(FaultKey::Storm, e);
                }
                FaultEvent::ControllerCrash => {
                    if live {
                        self.controller_restart()?;
                    }
                }
            }
        }
        Ok((faults, repairs))
    }

    fn close_fault(&mut self, key: FaultKey, e: usize) {
        if let Some(opened) = self.open_faults.remove(&key) {
            self.mttr_samples.push(e - opened);
        }
    }

    /// In-band controller crash + restart: discard controller memory,
    /// recover from our own WAL, realign the data plane, re-anchor the log.
    /// With an intact log this is placement-invisible: the RNG resumes at
    /// its logged state and anti-entropy finds nothing to repair.
    fn controller_restart(&mut self) -> Result<(), ChaosError> {
        let rec = recover(self.wal.bytes())?;
        self.rolls = ChaosRng::new(rec.rng_state().unwrap_or(self.seed ^ ROLL_SALT));
        self.placer = self
            .policy
            .build(&self.scenario.power.server, self.reservations.clone());
        self.anti_entropy_round(&rec.state)?;
        // Crashes land at epoch starts, so the WAL has no open epoch and a
        // re-anchoring snapshot is always legal here.
        self.wal.append(&WalEvent::Snapshot(ClusterState::capture(
            rec.state.committed_epoch,
            &rec.state.intended,
            &self.runtime,
            Some(self.gate.states()),
            Some(self.rolls.state()),
        )));
        self.recoveries += 1;
        self.recovered_flag = true;
        Ok(())
    }

    /// Diffs the recovered controller view against the live data plane and
    /// applies a bounded batch of legal repairs. Returns the applied
    /// transitions.
    fn anti_entropy_round(
        &mut self,
        state: &ClusterState,
    ) -> Result<Vec<goldilocks_cluster::Transition>, ChaosError> {
        let view = state.actual_placement(self.scenario.base.containers.len());
        let plan = {
            let tree = &self.tree;
            let gate = &self.gate;
            anti_entropy(
                &view,
                &self.runtime,
                &|s: ServerId| !tree.server(s).failed && gate.is_ready(s.0),
                MAX_REPAIRS_PER_ROUND,
            )
        };
        if !plan.transitions.is_empty() {
            self.runtime.apply_all(&plan.transitions)?;
        }
        Ok(plan.transitions)
    }
}

/// Runs `policy` over `scenario` while replaying `schedule`, with `seed`
/// driving the migration-failure rolls. Identical inputs replay
/// identically. Thin wrapper over [`ChaosDriver`].
///
/// # Errors
///
/// Only on driver bugs: an illegal transition stream, or a placement
/// failure that survives every fallback rung (the shed ladder bottoms out
/// at an empty placement, so this should be unreachable).
pub fn run_chaos(
    scenario: &Scenario,
    policy: &Policy,
    schedule: &FaultSchedule,
    seed: u64,
) -> Result<ChaosRun, ChaosError> {
    let mut driver = ChaosDriver::new(scenario, policy, schedule, seed);
    driver.run_remaining()?;
    Ok(driver.finish())
}

/// Walks the degradation ladder until some placement materializes.
fn place_with_fallbacks(
    policy: &Policy,
    placer: &mut Box<dyn Placer>,
    scenario: &Scenario,
    reservations: &[Resources],
    w: &Workload,
    tree: &DcTree,
) -> Result<(Placement, FallbackLevel, usize), PlaceError> {
    if let Ok(p) = placer.place(w, tree) {
        return Ok((p, FallbackLevel::Primary, 0));
    }
    let mut mild = policy.build_mildly_relaxed(&scenario.power.server, reservations.to_vec());
    if let Ok(p) = mild.place(w, tree) {
        return Ok((p, FallbackLevel::MildRelaxed, 0));
    }
    let mut relaxed = policy.build_relaxed(&scenario.power.server, reservations.to_vec());
    if let Ok(p) = relaxed.place(w, tree) {
        return Ok((p, FallbackLevel::Relaxed, 0));
    }
    let mut spill = EPvm { max_util: 1.0 };
    if let Ok(p) = spill.place(w, tree) {
        return Ok((p, FallbackLevel::Spill, 0));
    }
    // Shed the tail (lowest-priority containers) until the rest fits. The
    // ladder bottoms out at the empty placement, which always "fits".
    let step = (w.len() / 20).max(1);
    let mut keep = w.len().saturating_sub(step);
    loop {
        if keep == 0 {
            return Ok((
                Placement {
                    assignment: vec![None; w.len()],
                },
                FallbackLevel::Shed,
                w.len(),
            ));
        }
        let sub = w.prefix(keep);
        let mut spill = EPvm { max_util: 1.0 };
        if let Ok(p) = spill.place(&sub, tree) {
            let mut assignment = p.assignment;
            assignment.resize(w.len(), None);
            return Ok((
                Placement { assignment },
                FallbackLevel::Shed,
                w.len() - keep,
            ));
        }
        keep = keep.saturating_sub(step);
    }
}

fn summarize(
    records: &[ChaosEpochRecord],
    mttr_samples: &[usize],
    unrepaired: usize,
    recoveries: usize,
) -> ResilienceSummary {
    let epochs = records.len();
    let demanded: usize = records.iter().map(|r| r.demanded).sum();
    let served: usize = records.iter().map(|r| r.served).sum();
    let n = epochs.max(1) as f64;
    ResilienceSummary {
        epochs,
        fault_events: records.iter().map(|r| r.faults).sum(),
        repair_events: records.iter().map(|r| r.repairs).sum(),
        mttr_epochs: if mttr_samples.is_empty() {
            0.0
        } else {
            mttr_samples.iter().sum::<usize>() as f64 / mttr_samples.len() as f64
        },
        unrepaired_faults: unrepaired,
        availability: if demanded == 0 {
            1.0
        } else {
            served as f64 / demanded as f64
        },
        shed_container_epochs: records.iter().map(|r| r.shed).sum(),
        fallback_epochs: records
            .iter()
            .filter(|r| r.fallback != FallbackLevel::Primary)
            .count(),
        shed_epochs: records
            .iter()
            .filter(|r| r.fallback == FallbackLevel::Shed)
            .count(),
        migrations_attempted: records.iter().map(|r| r.migration.attempted).sum(),
        migrations_completed: records.iter().map(|r| r.migration.completed).sum(),
        failed_migration_attempts: records.iter().map(|r| r.migration.failed_attempts).sum(),
        migration_retries: records.iter().map(|r| r.migration.retries).sum(),
        migrations_abandoned: records.iter().map(|r| r.migration.abandoned).sum(),
        forced_restarts: records.iter().map(|r| r.migration.forced_restarts).sum(),
        controller_recoveries: recoveries,
        avg_total_watts: records
            .iter()
            .map(ChaosEpochRecord::total_watts)
            .sum::<f64>()
            / n,
        avg_tct_ms: records.iter().map(|r| r.tct_ms).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::plan::{FaultPlan, FaultPlanConfig};
    use crate::scenarios::wiki_testbed;
    use goldilocks_core::GoldilocksConfig;

    #[test]
    fn quiescent_run_serves_everything() {
        let s = wiki_testbed(6, 40, 2);
        let run = run_chaos(&s, &Policy::EPvm, &FaultSchedule::empty(6), 1).unwrap();
        assert_eq!(run.records.len(), 6);
        assert_eq!(run.summary.availability, 1.0);
        assert_eq!(run.summary.fault_events, 0);
        assert_eq!(run.summary.forced_restarts, 0);
        assert_eq!(run.summary.controller_recoveries, 0);
        assert!(run
            .records
            .iter()
            .all(|r| r.fallback == FallbackLevel::Primary));
    }

    #[test]
    fn mass_failure_makes_primary_placer_error() {
        use goldilocks_placement::Placer;
        let s = wiki_testbed(2, 48, 3);
        let mut tree = s.tree.clone();
        for sid in 2..16 {
            tree.fail_server(ServerId(sid));
        }
        // Nominal (peak) demand: 48 containers against 2 surviving servers.
        let w = s.base.prefix(48);
        let mut gold = goldilocks_core::Goldilocks::with_config(GoldilocksConfig::paper());
        let err = gold.place(&w, &tree);
        assert!(
            matches!(
                err,
                Err(PlaceError::Unplaceable { .. }) | Err(PlaceError::Infeasible { .. })
            ),
            "48 containers cannot fit 3 servers under the paper caps: {err:?}"
        );
    }

    #[test]
    fn mass_server_failure_engages_fallback_chain() {
        let s = wiki_testbed(4, 48, 3);
        // Epoch 1 kills 13 of the 16 testbed servers; capacity collapses
        // far below demand, so Goldilocks's primary build must fail and a
        // placement must still be produced further down the ladder.
        let mut schedule = FaultSchedule::empty(4);
        for sid in 3..16 {
            schedule.events[1].push(FaultEvent::ServerCrash(ServerId(sid)));
        }
        let policy = Policy::Goldilocks(GoldilocksConfig::paper());
        let run = run_chaos(&s, &policy, &schedule, 7).unwrap();
        assert_eq!(run.records.len(), 4, "run must survive the crash epoch");
        let crash = &run.records[1];
        assert_eq!(crash.healthy_servers, 3);
        assert_ne!(
            crash.fallback,
            FallbackLevel::Primary,
            "primary cannot fit 3 servers"
        );
        assert!(
            crash.served > 0,
            "a degraded placement must still serve something"
        );
        assert!(crash.served <= crash.demanded);
        assert!(
            run.summary.availability < 1.0,
            "shedding must dent availability"
        );
        assert!(run.summary.shed_container_epochs > 0);
    }

    #[test]
    fn crashed_servers_force_cold_restarts() {
        let s = wiki_testbed(3, 40, 5);
        let mut schedule = FaultSchedule::empty(3);
        // One server dies at epoch 1 and never comes back.
        schedule.events[1].push(FaultEvent::ServerCrash(ServerId(0)));
        let run = run_chaos(&s, &Policy::EPvm, &schedule, 11).unwrap();
        // E-PVM spreads over all 16 servers, so server 0 hosted containers
        // that must cold-restart elsewhere.
        assert!(run.summary.forced_restarts > 0);
        assert_eq!(
            run.summary.availability, 1.0,
            "spare capacity absorbs one crash"
        );
    }

    #[test]
    fn chaos_run_is_deterministic() {
        let s = wiki_testbed(10, 48, 4);
        let plan = FaultPlan {
            config: FaultPlanConfig::default(),
            seed: 99,
        };
        let schedule = plan.schedule(10, &s.tree);
        let policy = Policy::Goldilocks(GoldilocksConfig::paper());
        let a = run_chaos(&s, &policy, &schedule, 99).unwrap();
        let b = run_chaos(&s, &policy, &schedule, 99).unwrap();
        assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
        assert_eq!(format!("{:?}", a.summary), format!("{:?}", b.summary));
    }

    #[test]
    fn migration_storm_causes_retries_or_abandons() {
        let mut s = wiki_testbed(8, 48, 6);
        // Make every attempt fail while the storm lasts.
        let mut schedule = FaultSchedule::empty(8);
        schedule.events[1].push(FaultEvent::MigrationStorm { failure_prob: 1.0 });
        // Never let the storm end; every migration in epochs 1.. fails.
        s.migration.max_retries = 1;
        let policy = Policy::Goldilocks(GoldilocksConfig::paper());
        let run = run_chaos(&s, &policy, &schedule, 13).unwrap();
        if run.summary.migrations_attempted > 0 {
            assert_eq!(
                run.summary.migrations_completed, 0,
                "storm fails all attempts"
            );
            assert!(run.summary.failed_migration_attempts > 0);
            assert_eq!(
                run.summary.migrations_abandoned,
                run.summary.migrations_attempted
            );
        }
    }

    #[test]
    fn mttr_measured_from_fault_to_repair() {
        let s = wiki_testbed(6, 40, 8);
        let mut schedule = FaultSchedule::empty(6);
        schedule.events[1].push(FaultEvent::ServerCrash(ServerId(2)));
        schedule.events[4].push(FaultEvent::ServerRestore(ServerId(2)));
        let run = run_chaos(&s, &Policy::EPvm, &schedule, 21).unwrap();
        assert_eq!(run.summary.mttr_epochs, 3.0);
        assert_eq!(run.summary.repair_events, 1);
        assert_eq!(run.summary.unrepaired_faults, 0);
    }

    #[test]
    fn in_band_controller_crash_is_placement_invisible() {
        let s = wiki_testbed(8, 48, 9);
        let policy = Policy::Goldilocks(GoldilocksConfig::paper());
        let quiet = FaultSchedule::empty(8);
        let mut crashy = FaultSchedule::empty(8);
        crashy.events[2].push(FaultEvent::ControllerCrash);
        crashy.events[5].push(FaultEvent::ControllerCrash);

        let a = run_chaos(&s, &policy, &quiet, 17).unwrap();
        let b = run_chaos(&s, &policy, &crashy, 17).unwrap();
        assert_eq!(b.summary.controller_recoveries, 2);
        assert!(b.records[2].recovered && b.records[5].recovered);
        // With an intact WAL, recovery must not perturb the trajectory.
        let served_a: Vec<usize> = a.records.iter().map(|r| r.served).collect();
        let served_b: Vec<usize> = b.records.iter().map(|r| r.served).collect();
        assert_eq!(served_a, served_b);
        let watts_a: Vec<String> = a
            .records
            .iter()
            .map(|r| format!("{:.6}", r.server_watts))
            .collect();
        let watts_b: Vec<String> = b
            .records
            .iter()
            .map(|r| format!("{:.6}", r.server_watts))
            .collect();
        assert_eq!(watts_a, watts_b);
    }

    #[test]
    fn boundary_crash_resume_matches_uninterrupted_run() {
        let s = wiki_testbed(10, 48, 10);
        let policy = Policy::Goldilocks(GoldilocksConfig::paper());
        let plan = FaultPlan {
            config: FaultPlanConfig {
                controller_crash_rate: 0.0,
                ..FaultPlanConfig::default()
            },
            seed: 31,
        };
        let schedule = plan.schedule(10, &s.tree);
        let n = s.base.containers.len();

        let mut base = ChaosDriver::new(&s, &policy, &schedule, 31);
        base.run_remaining().unwrap();
        let reference = base.assignment(n);

        for boundary in [1usize, 4, 7] {
            let mut first = ChaosDriver::new(&s, &policy, &schedule, 31);
            first.run_to(boundary).unwrap();
            let wal = first.wal_bytes().to_vec();
            let dp = first.data_plane();
            drop(first);

            // Warm resume: the data plane survived the controller.
            let mut warm = ChaosDriver::resume(&s, &policy, &schedule, 31, &wal, Some(dp)).unwrap();
            assert_eq!(warm.next_epoch(), boundary);
            warm.run_remaining().unwrap();
            assert_eq!(warm.assignment(n), reference, "warm resume at {boundary}");

            // Cold resume: data plane rebuilt from the log alone.
            let mut cold = ChaosDriver::resume(&s, &policy, &schedule, 31, &wal, None).unwrap();
            cold.run_remaining().unwrap();
            assert_eq!(cold.assignment(n), reference, "cold resume at {boundary}");
        }
    }

    #[test]
    fn mid_epoch_crash_resume_matches_uninterrupted_run() {
        let mut s = wiki_testbed(9, 48, 11);
        // Force migration churn so epochs actually have units to crash in.
        s.migration.failure_prob = 0.3;
        let policy = Policy::Goldilocks(GoldilocksConfig::paper());
        let schedule = FaultSchedule::empty(9);
        let n = s.base.containers.len();

        let mut base = ChaosDriver::new(&s, &policy, &schedule, 77);
        base.run_remaining().unwrap();
        let reference = base.assignment(n);

        for (epoch, units) in [(0usize, 3usize), (3, 1), (6, 5)] {
            let mut first = ChaosDriver::new(&s, &policy, &schedule, 77);
            first.run_to(epoch).unwrap();
            let completed = first.step_epoch(Some(units)).unwrap();
            let wal = first.wal_bytes().to_vec();
            let dp = first.data_plane();
            drop(first);

            let mut resumed =
                ChaosDriver::resume(&s, &policy, &schedule, 77, &wal, Some(dp)).unwrap();
            if !completed {
                assert_eq!(resumed.next_epoch(), epoch, "epoch must still be open");
            }
            resumed.run_remaining().unwrap();
            assert_eq!(
                resumed.assignment(n),
                reference,
                "mid-epoch resume at epoch {epoch} after {units} units"
            );
        }
    }

    #[test]
    fn torn_tail_resume_recovers_and_finishes() {
        let s = wiki_testbed(6, 40, 12);
        let policy = Policy::EPvm;
        let schedule = FaultSchedule::empty(6);
        let n = s.base.containers.len();

        let mut first = ChaosDriver::new(&s, &policy, &schedule, 5);
        first.run_to(3).unwrap();
        let mut wal = first.wal_bytes().to_vec();
        let dp = first.data_plane();
        drop(first);
        // Tear the final record mid-write.
        wal.truncate(wal.len() - 5);

        let mut resumed = ChaosDriver::resume(&s, &policy, &schedule, 5, &wal, Some(dp)).unwrap();
        resumed.run_remaining().unwrap();
        let run = resumed.finish();
        assert!(run.summary.controller_recoveries >= 1);
        // The run must complete with every container placed.
        let mut last = ChaosDriver::new(&s, &policy, &schedule, 5);
        last.run_remaining().unwrap();
        assert_eq!(
            last.assignment(n).iter().filter(|a| a.is_some()).count(),
            run.records.last().unwrap().served
        );
    }
}
