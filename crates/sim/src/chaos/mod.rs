//! Deterministic fault injection and graceful degradation.
//!
//! Split in two halves:
//!
//! - [`plan`]: a seeded [`FaultPlan`] expands into a replayable
//!   [`FaultSchedule`] of typed [`FaultEvent`]s — server crashes, rack
//!   uplink degradations, switch failures, heterogeneous replacements,
//!   stragglers and migration storms, each paired with its repair.
//! - [`driver`]: [`run_chaos`] replays a schedule against a working copy
//!   of the topology while driving a placement policy, absorbing
//!   [`goldilocks_placement::PlaceError`]s with a fallback ladder
//!   (primary → relaxed caps → E-PVM spill → shed) and executing
//!   migrations through the fault-aware executor in `goldilocks-cluster`.
//!
//! Everything is seeded: the same `(scenario, policy, schedule, seed)`
//! replays byte-for-byte, which is what makes fault experiments citable.

mod driver;
mod plan;

pub use driver::{
    run_chaos, ChaosEpochRecord, ChaosError, ChaosRun, FallbackLevel, ResilienceSummary,
};
pub use plan::{ChaosRng, FaultEvent, FaultPlan, FaultPlanConfig, FaultSchedule};
