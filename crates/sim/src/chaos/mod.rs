//! Deterministic fault injection and graceful degradation.
//!
//! Split in two halves:
//!
//! - [`plan`]: a seeded [`FaultPlan`] expands into a replayable
//!   [`FaultSchedule`] of typed [`FaultEvent`]s — server crashes, rack
//!   uplink degradations, switch failures, heterogeneous replacements,
//!   stragglers and migration storms, each paired with its repair.
//! - [`driver`]: [`run_chaos`] replays a schedule against a working copy
//!   of the topology while driving a placement policy, absorbing
//!   [`goldilocks_placement::PlaceError`]s with a fallback ladder
//!   (primary → relaxed caps → E-PVM spill → shed) and executing
//!   migrations through the fault-aware executor in `goldilocks-cluster`.
//!   The run lives in a [`ChaosDriver`], which journals every decision to
//!   a write-ahead log: the controller can be crashed at epoch boundaries
//!   or between migration units (including via the in-schedule
//!   [`FaultEvent::ControllerCrash`]) and [`ChaosDriver::resume`]d from
//!   the surviving bytes without perturbing the trajectory.
//! - [`service`]: the same treatment for the *serving path*.
//!   [`ServiceFaultPlan`] expands request-burst storms, slow-consumer
//!   stalls, WAL stalls/short-writes and controller crashes into a
//!   [`ServiceFaultSchedule`], and [`run_service_soak`] replays a seeded
//!   request trace against a `goldilocks-service` daemon under that
//!   schedule, crash-restarting from the journal and checking the
//!   restarted timeline stays byte-identical. [`run_transport_chaos`]
//!   goes one layer further out: a fleet of real service *clients* runs
//!   over the deterministic in-memory socket fabric with seeded
//!   transport faults (cuts mid-frame, split reads, stalled writers,
//!   half-open peers) plus kill -9 restarts, proving the idempotent
//!   retry path never double-places or loses a journaled accept.
//!
//! Everything is seeded: the same `(scenario, policy, schedule, seed)`
//! replays byte-for-byte, which is what makes fault experiments citable.

mod driver;
mod plan;
mod service;

pub use driver::{
    run_chaos, ChaosDriver, ChaosEpochRecord, ChaosError, ChaosRun, FallbackLevel,
    ResilienceSummary,
};
pub use plan::{ChaosRng, FaultEvent, FaultPlan, FaultPlanConfig, FaultSchedule};
pub use service::{
    generate_trace, run_service_soak, run_transport_chaos, ServiceFaultEvent, ServiceFaultPlan,
    ServiceFaultPlanConfig, ServiceFaultSchedule, ServiceSoakConfig, ServiceSoakRun,
    ServiceTraceConfig, TransportChaosConfig, TransportChaosRun,
};
