//! Deterministic fault injection and graceful degradation.
//!
//! Split in two halves:
//!
//! - [`plan`]: a seeded [`FaultPlan`] expands into a replayable
//!   [`FaultSchedule`] of typed [`FaultEvent`]s — server crashes, rack
//!   uplink degradations, switch failures, heterogeneous replacements,
//!   stragglers and migration storms, each paired with its repair.
//! - [`driver`]: [`run_chaos`] replays a schedule against a working copy
//!   of the topology while driving a placement policy, absorbing
//!   [`goldilocks_placement::PlaceError`]s with a fallback ladder
//!   (primary → relaxed caps → E-PVM spill → shed) and executing
//!   migrations through the fault-aware executor in `goldilocks-cluster`.
//!   The run lives in a [`ChaosDriver`], which journals every decision to
//!   a write-ahead log: the controller can be crashed at epoch boundaries
//!   or between migration units (including via the in-schedule
//!   [`FaultEvent::ControllerCrash`]) and [`ChaosDriver::resume`]d from
//!   the surviving bytes without perturbing the trajectory.
//!
//! Everything is seeded: the same `(scenario, policy, schedule, seed)`
//! replays byte-for-byte, which is what makes fault experiments citable.

mod driver;
mod plan;

pub use driver::{
    run_chaos, ChaosDriver, ChaosEpochRecord, ChaosError, ChaosRun, FallbackLevel,
    ResilienceSummary,
};
pub use plan::{ChaosRng, FaultEvent, FaultPlan, FaultPlanConfig, FaultSchedule};
