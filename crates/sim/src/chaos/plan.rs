//! Deterministic fault-plan generation.
//!
//! A [`FaultPlan`] is a seed plus rate knobs; expanding it against a
//! topology yields a [`FaultSchedule`] — the exact, replayable list of
//! fault and repair events per epoch. The same `(plan, epochs, tree)`
//! triple always expands to the identical schedule, on any platform: the
//! generator uses its own [`ChaosRng`] (SplitMix64) rather than an external
//! RNG crate precisely so reproducibility does not depend on a dependency's
//! stream.

use std::collections::BTreeSet;

use goldilocks_topology::{DcTree, NodeId, ServerId};

/// Self-contained SplitMix64 PRNG for fault generation and migration rolls.
///
/// Small state, full 64-bit period, and — critically — defined entirely in
/// this crate, so seeded chaos runs replay byte-for-byte everywhere.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// The current raw state. A generator rebuilt with
    /// `ChaosRng::new(state)` continues the exact same stream — this is how
    /// the crash-recovery WAL resumes migration rolls mid-run.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

/// One injected fault or its repair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// A server crashes: it leaves the placement-eligible set and its
    /// containers must be restarted elsewhere.
    ServerCrash(ServerId),
    /// A crashed server comes back with its original capacity.
    ServerRestore(ServerId),
    /// A rack uplink degrades to `factor` of its nominal bandwidth.
    UplinkDegrade {
        /// The rack node whose uplink degrades.
        node: NodeId,
        /// Remaining fraction of nominal bandwidth, in `(0, 1)`.
        factor: f64,
    },
    /// A degraded uplink is restored to nominal bandwidth.
    UplinkRepair(NodeId),
    /// A rack (ToR) switch fails: every server beneath it becomes
    /// unreachable until repair.
    SwitchFail(NodeId),
    /// The failed switch is replaced; servers it took down come back.
    SwitchRepair(NodeId),
    /// A crashed-and-replaced server returns with *different* hardware:
    /// its nominal capacity is permanently rescaled by `scale`
    /// (heterogeneity injection, Section IV).
    HeteroReplace {
        /// The replaced server.
        server: ServerId,
        /// Capacity multiplier applied to the nominal resources.
        scale: f64,
    },
    /// A server becomes a straggler: its capacity drops to `slowdown` of
    /// nominal until recovery (contention, thermal throttling).
    Straggler {
        /// The slowed server.
        server: ServerId,
        /// Remaining fraction of nominal capacity, in `(0, 1)`.
        slowdown: f64,
    },
    /// The straggler recovers to nominal capacity.
    StragglerRecover(ServerId),
    /// CRIU/rsync infrastructure trouble: migration attempts fail with at
    /// least this probability until the storm ends.
    MigrationStorm {
        /// Per-attempt failure probability floor during the storm.
        failure_prob: f64,
    },
    /// Migration infrastructure back to the scenario's nominal model.
    MigrationStormEnd,
    /// The controller process is killed at the start of the epoch and
    /// restarts from its write-ahead log (the data plane keeps running).
    ControllerCrash,
}

impl FaultEvent {
    /// True for repair/recovery events (applied before new faults).
    pub fn is_repair(&self) -> bool {
        matches!(
            self,
            FaultEvent::ServerRestore(_)
                | FaultEvent::UplinkRepair(_)
                | FaultEvent::SwitchRepair(_)
                | FaultEvent::StragglerRecover(_)
                | FaultEvent::MigrationStormEnd
        )
    }
}

/// Per-epoch injection rates and fault shapes. All `*_rate` fields are
/// per-epoch probabilities in `[0, 1]` of injecting one fault of that kind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlanConfig {
    /// P(one server crash) per epoch.
    pub server_crash_rate: f64,
    /// P(one rack-uplink degradation) per epoch.
    pub uplink_degrade_rate: f64,
    /// P(one rack-switch failure) per epoch.
    pub switch_fail_rate: f64,
    /// P(one heterogeneous hardware replacement) per epoch.
    pub hetero_replace_rate: f64,
    /// P(one server turning straggler) per epoch.
    pub straggler_rate: f64,
    /// P(a migration storm starting) per epoch.
    pub migration_storm_rate: f64,
    /// P(the controller crashing at an epoch start) per epoch. The restart
    /// recovers from the WAL within the same epoch (no repair event).
    pub controller_crash_rate: f64,
    /// Mean epochs until a fault is repaired (uniform in `[1, 2·mean]`).
    pub mean_repair_epochs: usize,
    /// Remaining bandwidth fraction of a degraded uplink.
    pub uplink_degrade_factor: f64,
    /// Remaining capacity fraction of a straggler.
    pub straggler_slowdown: f64,
    /// Replacement-hardware capacity scale is uniform in this range.
    pub hetero_scale_range: (f64, f64),
    /// Migration failure probability during a storm.
    pub storm_failure_prob: f64,
    /// Never take more than this fraction of servers down at once
    /// (crashes + switch failures combined).
    pub max_failed_fraction: f64,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            server_crash_rate: 0.10,
            uplink_degrade_rate: 0.06,
            switch_fail_rate: 0.03,
            hetero_replace_rate: 0.03,
            straggler_rate: 0.06,
            migration_storm_rate: 0.05,
            controller_crash_rate: 0.05,
            mean_repair_epochs: 3,
            uplink_degrade_factor: 0.30,
            straggler_slowdown: 0.50,
            hetero_scale_range: (0.6, 1.4),
            storm_failure_prob: 0.5,
            max_failed_fraction: 0.30,
        }
    }
}

impl FaultPlanConfig {
    /// A quiet configuration: no faults at all (the control arm).
    pub fn quiescent() -> Self {
        FaultPlanConfig {
            server_crash_rate: 0.0,
            uplink_degrade_rate: 0.0,
            switch_fail_rate: 0.0,
            hetero_replace_rate: 0.0,
            straggler_rate: 0.0,
            migration_storm_rate: 0.0,
            controller_crash_rate: 0.0,
            ..FaultPlanConfig::default()
        }
    }
}

/// A seeded fault plan: expand with [`FaultPlan::schedule`] to get the
/// concrete event list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Injection rates and fault shapes.
    pub config: FaultPlanConfig,
    /// Generator seed; same seed, same schedule.
    pub seed: u64,
}

/// The expanded, replayable event list: `events[e]` are the faults and
/// repairs applied at the start of epoch `e`, repairs first.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// Per-epoch events.
    pub events: Vec<Vec<FaultEvent>>,
}

impl FaultSchedule {
    /// A schedule with no events for `epochs` epochs.
    pub fn empty(epochs: usize) -> Self {
        FaultSchedule {
            events: vec![Vec::new(); epochs],
        }
    }

    /// Events at `epoch` (empty past the end of the schedule).
    pub fn events_at(&self, epoch: usize) -> &[FaultEvent] {
        self.events.get(epoch).map_or(&[], Vec::as_slice)
    }

    /// Total number of injected faults (repairs not counted).
    pub fn fault_count(&self) -> usize {
        self.events
            .iter()
            .flatten()
            .filter(|e| !e.is_repair())
            .count()
    }
}

/// What the generator knows about in-flight faults while expanding.
#[derive(Default)]
struct GeneratorState {
    /// Servers currently down (individually crashed or rack-failed).
    down: BTreeSet<ServerId>,
    /// Racks with a degraded uplink.
    degraded: BTreeSet<NodeId>,
    /// Racks with a failed switch.
    rack_down: BTreeSet<NodeId>,
    /// Current stragglers.
    straggling: BTreeSet<ServerId>,
    /// A migration storm is active.
    storming: bool,
}

impl FaultPlan {
    /// Expands the plan into the concrete per-epoch event schedule for
    /// `epochs` epochs over `tree`. Deterministic in `(self, epochs, tree)`.
    pub fn schedule(&self, epochs: usize, tree: &DcTree) -> FaultSchedule {
        let cfg = &self.config;
        let mut rng = ChaosRng::new(self.seed);
        let mut events: Vec<Vec<FaultEvent>> = vec![Vec::new(); epochs];
        // Repairs scheduled for a future epoch; consumed at that epoch's
        // start so eligibility sets stay accurate. Repairs falling past the
        // horizon are dropped (the fault stays open at end of run).
        let mut pending: Vec<Vec<FaultEvent>> = vec![Vec::new(); epochs];
        let mut st = GeneratorState::default();
        let racks = tree.rack_nodes();
        let server_count = tree.server_count();
        let max_down = ((cfg.max_failed_fraction * server_count as f64).floor() as usize).max(1);

        for e in 0..epochs {
            // 1. Repairs land first.
            for r in pending[e].drain(..) {
                match r {
                    FaultEvent::ServerRestore(s) => {
                        st.down.remove(&s);
                    }
                    FaultEvent::UplinkRepair(n) => {
                        st.degraded.remove(&n);
                    }
                    FaultEvent::SwitchRepair(n) => {
                        st.rack_down.remove(&n);
                        for s in tree.servers_under(n) {
                            st.down.remove(&s);
                        }
                    }
                    FaultEvent::StragglerRecover(s) => {
                        st.straggling.remove(&s);
                    }
                    FaultEvent::MigrationStormEnd => st.storming = false,
                    _ => {}
                }
                events[e].push(r);
            }

            let repair_epoch =
                |rng: &mut ChaosRng| e + 1 + rng.index((2 * cfg.mean_repair_epochs).max(1));

            // 2. New faults, one Bernoulli trial per kind. The trial order
            // is fixed; changing it changes the stream, so append only.
            if rng.chance(cfg.server_crash_rate) {
                let eligible: Vec<ServerId> = (0..server_count)
                    .map(ServerId)
                    .filter(|s| !st.down.contains(s) && !st.straggling.contains(s))
                    .collect();
                if !eligible.is_empty() && st.down.len() < max_down {
                    let victim = eligible[rng.index(eligible.len())];
                    st.down.insert(victim);
                    events[e].push(FaultEvent::ServerCrash(victim));
                    let re = repair_epoch(&mut rng);
                    if re < epochs {
                        pending[re].push(FaultEvent::ServerRestore(victim));
                    }
                }
            }
            if rng.chance(cfg.switch_fail_rate) {
                let eligible: Vec<NodeId> = racks
                    .iter()
                    .copied()
                    .filter(|n| !st.rack_down.contains(n))
                    .collect();
                if !eligible.is_empty() {
                    let victim = eligible[rng.index(eligible.len())];
                    let under = tree.servers_under(victim);
                    let newly_down = under.iter().filter(|s| !st.down.contains(s)).count();
                    if st.down.len() + newly_down <= max_down {
                        st.rack_down.insert(victim);
                        for s in under {
                            st.down.insert(s);
                        }
                        events[e].push(FaultEvent::SwitchFail(victim));
                        let re = repair_epoch(&mut rng);
                        if re < epochs {
                            pending[re].push(FaultEvent::SwitchRepair(victim));
                        }
                    }
                }
            }
            if rng.chance(cfg.uplink_degrade_rate) {
                let eligible: Vec<NodeId> = racks
                    .iter()
                    .copied()
                    .filter(|n| !st.degraded.contains(n) && !st.rack_down.contains(n))
                    .collect();
                if !eligible.is_empty() {
                    let victim = eligible[rng.index(eligible.len())];
                    st.degraded.insert(victim);
                    events[e].push(FaultEvent::UplinkDegrade {
                        node: victim,
                        factor: cfg.uplink_degrade_factor,
                    });
                    let re = repair_epoch(&mut rng);
                    if re < epochs {
                        pending[re].push(FaultEvent::UplinkRepair(victim));
                    }
                }
            }
            if rng.chance(cfg.straggler_rate) {
                let eligible: Vec<ServerId> = (0..server_count)
                    .map(ServerId)
                    .filter(|s| !st.down.contains(s) && !st.straggling.contains(s))
                    .collect();
                if !eligible.is_empty() {
                    let victim = eligible[rng.index(eligible.len())];
                    st.straggling.insert(victim);
                    events[e].push(FaultEvent::Straggler {
                        server: victim,
                        slowdown: cfg.straggler_slowdown,
                    });
                    let re = repair_epoch(&mut rng);
                    if re < epochs {
                        pending[re].push(FaultEvent::StragglerRecover(victim));
                    }
                }
            }
            if rng.chance(cfg.hetero_replace_rate) {
                let eligible: Vec<ServerId> = (0..server_count)
                    .map(ServerId)
                    .filter(|s| !st.down.contains(s) && !st.straggling.contains(s))
                    .collect();
                if !eligible.is_empty() {
                    let victim = eligible[rng.index(eligible.len())];
                    let (lo, hi) = cfg.hetero_scale_range;
                    let scale = lo + rng.uniform() * (hi - lo);
                    events[e].push(FaultEvent::HeteroReplace {
                        server: victim,
                        scale,
                    });
                }
            }
            if !st.storming && rng.chance(cfg.migration_storm_rate) {
                st.storming = true;
                events[e].push(FaultEvent::MigrationStorm {
                    failure_prob: cfg.storm_failure_prob,
                });
                let re = repair_epoch(&mut rng);
                if re < epochs {
                    pending[re].push(FaultEvent::MigrationStormEnd);
                }
            }
            // Appended after the earlier trials so existing seeds keep
            // their fault streams; only this trial's outcome is new.
            if rng.chance(cfg.controller_crash_rate) {
                events[e].push(FaultEvent::ControllerCrash);
            }
        }
        FaultSchedule { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldilocks_topology::builders::fat_tree;
    use goldilocks_topology::Resources;

    fn tree() -> DcTree {
        fat_tree(4, Resources::new(400.0, 64.0, 1000.0), 1000.0)
    }

    #[test]
    fn chaos_rng_is_deterministic_and_uniformish() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaosRng::new(8);
        let mean: f64 = (0..10_000).map(|_| c.uniform()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan {
            config: FaultPlanConfig::default(),
            seed: 42,
        };
        let t = tree();
        assert_eq!(plan.schedule(80, &t), plan.schedule(80, &t));
        let other = FaultPlan {
            config: FaultPlanConfig::default(),
            seed: 43,
        };
        assert_ne!(plan.schedule(80, &t), other.schedule(80, &t));
    }

    #[test]
    fn every_fault_gets_at_most_one_matching_repair() {
        let plan = FaultPlan {
            config: FaultPlanConfig::default(),
            seed: 9,
        };
        let s = plan.schedule(120, &tree());
        let mut crashes = 0i64;
        for ev in s.events.iter().flatten() {
            match ev {
                FaultEvent::ServerCrash(_) => crashes += 1,
                FaultEvent::ServerRestore(_) => {
                    crashes -= 1;
                    assert!(crashes >= 0, "restore before crash");
                }
                _ => {}
            }
        }
        assert!(crashes >= 0);
        assert!(
            s.fault_count() > 0,
            "120 epochs at default rates must fault"
        );
    }

    #[test]
    fn failed_fraction_capped() {
        let cfg = FaultPlanConfig {
            server_crash_rate: 1.0,
            mean_repair_epochs: 100, // effectively never repaired
            max_failed_fraction: 0.25,
            ..FaultPlanConfig::quiescent()
        };
        let t = tree();
        let s = FaultPlan {
            config: cfg,
            seed: 1,
        }
        .schedule(60, &t);
        // The cap bounds *concurrent* failures, not the run's total.
        let mut down = 0usize;
        let mut peak = 0usize;
        let mut total = 0usize;
        for ev in s.events.iter().flatten() {
            match ev {
                FaultEvent::ServerCrash(_) => {
                    down += 1;
                    total += 1;
                    peak = peak.max(down);
                }
                FaultEvent::ServerRestore(_) => down -= 1,
                _ => {}
            }
        }
        assert!(
            peak <= (t.server_count() as f64 * 0.25) as usize,
            "peak {peak}"
        );
        assert!(total > 0);
    }

    #[test]
    fn quiescent_plan_is_empty() {
        let s = FaultPlan {
            config: FaultPlanConfig::quiescent(),
            seed: 5,
        }
        .schedule(50, &tree());
        assert_eq!(s.fault_count(), 0);
        assert!(s.events.iter().all(Vec::is_empty));
    }

    #[test]
    fn controller_crashes_scheduled_and_counted_as_faults() {
        let cfg = FaultPlanConfig {
            controller_crash_rate: 1.0,
            ..FaultPlanConfig::quiescent()
        };
        let s = FaultPlan {
            config: cfg,
            seed: 11,
        }
        .schedule(10, &tree());
        assert_eq!(s.fault_count(), 10, "one crash per epoch at rate 1.0");
        for e in 0..10 {
            assert!(s.events_at(e).contains(&FaultEvent::ControllerCrash));
        }
        assert!(!FaultEvent::ControllerCrash.is_repair());
    }

    #[test]
    fn controller_crash_trial_does_not_shift_existing_streams() {
        // Same seed, crash trial on vs. off: every other event identical.
        let on = FaultPlan {
            config: FaultPlanConfig {
                controller_crash_rate: 1.0,
                ..FaultPlanConfig::default()
            },
            seed: 42,
        };
        let off = FaultPlan {
            config: FaultPlanConfig {
                controller_crash_rate: 0.0,
                ..FaultPlanConfig::default()
            },
            seed: 42,
        };
        let t = tree();
        let with: Vec<Vec<FaultEvent>> = on
            .schedule(60, &t)
            .events
            .into_iter()
            .map(|evs| {
                evs.into_iter()
                    .filter(|e| *e != FaultEvent::ControllerCrash)
                    .collect()
            })
            .collect();
        assert_eq!(with, off.schedule(60, &t).events);
    }

    #[test]
    fn repairs_precede_new_faults_within_an_epoch() {
        let plan = FaultPlan {
            config: FaultPlanConfig::default(),
            seed: 3,
        };
        for epoch_events in &plan.schedule(100, &tree()).events {
            let first_fault = epoch_events.iter().position(|e| !e.is_repair());
            let last_repair = epoch_events.iter().rposition(FaultEvent::is_repair);
            if let (Some(f), Some(r)) = (first_fault, last_repair) {
                assert!(r < f, "repair at index {r} after fault at {f}");
            }
        }
    }
}
