//! Service-path chaos: deterministic fault schedules and a soak driver
//! for the placement daemon.
//!
//! The control-plane chaos in [`super::plan`] attacks the *data plane*
//! (servers, switches, migrations). This module attacks the *serving
//! path*: request-burst storms that slam the admission queue, slow
//! consumers that back up the outcome outbox, WAL write stalls and short
//! writes that hit the journal-before-ack discipline, and controller
//! crashes mid-batch. Every schedule expands from its own seeded
//! [`ChaosRng`] stream — deliberately separate from [`super::FaultPlan`]'s
//! stream so adding service trials never perturbs existing seeded
//! control-plane experiments.
//!
//! [`run_service_soak`] replays a request trace against a
//! [`PlacementDaemon`] under such a schedule, crash-restarting the daemon
//! from its journal whenever a fault kills a commit, and checks that the
//! restarted timeline stays byte-identical with the journal it recovered
//! from (any divergence is reported, not papered over).

use goldilocks_cluster::WriteFault;
use goldilocks_core::ServiceConfig;
use goldilocks_service::{
    ClientConfig, ClientError, PlacementDaemon, Request, ServiceClient, ServiceEpochRecord,
    SimFaultConfig, SimNet, SimNetConfig, SimStats, SimTransport,
};
use goldilocks_topology::{DcTree, Resources};

use super::plan::ChaosRng;

/// One service-path fault, scheduled at an epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceFaultEvent {
    /// A request storm: this epoch's trace arrivals are replayed `factor`
    /// times (re-tagged), overrunning the admission queue and bucket.
    RequestBurst {
        /// Arrival multiplier (≥ 2).
        factor: u32,
    },
    /// The outcome consumer stalls: the outbox is not drained for the next
    /// `epochs` epochs, forcing bounded-overflow drops.
    SlowConsumer {
        /// Number of epochs the consumer is stalled.
        epochs: u32,
    },
    /// The journal rejects every write for the next `epochs` epochs:
    /// submissions bounce with `WalUnavailable` and commits stall.
    WalStall {
        /// Number of epochs the journal is unavailable.
        epochs: u32,
    },
    /// One-shot short-write fault armed for this epoch's commit: any
    /// record frame longer than `cap` bytes tears, killing the commit
    /// mid-batch and forcing a crash-restart.
    WalShortWrite {
        /// Maximum frame bytes the medium accepts before tearing.
        cap: usize,
    },
    /// The daemon process dies at the epoch boundary and is restarted
    /// from its journal.
    ControllerCrash,
}

/// Rate knobs for service-path fault generation.
#[derive(Clone, Copy, Debug)]
pub struct ServiceFaultPlanConfig {
    /// Per-epoch probability of a request burst.
    pub burst_prob: f64,
    /// Largest burst multiplier (uniform in `2..=max`).
    pub burst_factor_max: u32,
    /// Per-epoch probability of a slow-consumer stall starting.
    pub slow_consumer_prob: f64,
    /// Per-epoch probability of a WAL stall starting.
    pub wal_stall_prob: f64,
    /// Longest stall, in epochs (uniform in `1..=max`).
    pub stall_epochs_max: u32,
    /// Per-epoch probability of a one-shot short-write at commit.
    pub short_write_prob: f64,
    /// Per-epoch probability of a controller crash-restart.
    pub crash_prob: f64,
}

impl Default for ServiceFaultPlanConfig {
    fn default() -> Self {
        ServiceFaultPlanConfig {
            burst_prob: 0.15,
            burst_factor_max: 3,
            slow_consumer_prob: 0.10,
            wal_stall_prob: 0.08,
            stall_epochs_max: 2,
            short_write_prob: 0.10,
            crash_prob: 0.12,
        }
    }
}

impl ServiceFaultPlanConfig {
    /// All rates zero — a fault-free soak (the metering baseline).
    pub fn quiescent() -> Self {
        ServiceFaultPlanConfig {
            burst_prob: 0.0,
            burst_factor_max: 2,
            slow_consumer_prob: 0.0,
            wal_stall_prob: 0.0,
            stall_epochs_max: 1,
            short_write_prob: 0.0,
            crash_prob: 0.0,
        }
    }
}

/// A seeded service-fault plan; expanding it yields the exact replayable
/// schedule.
#[derive(Clone, Copy, Debug)]
pub struct ServiceFaultPlan {
    /// Seed for the plan's private [`ChaosRng`] stream.
    pub seed: u64,
    /// Rate knobs.
    pub config: ServiceFaultPlanConfig,
}

/// The expanded per-epoch service-fault schedule.
#[derive(Clone, Debug)]
pub struct ServiceFaultSchedule {
    events: Vec<Vec<ServiceFaultEvent>>,
}

impl ServiceFaultSchedule {
    /// A schedule with no events over `epochs` epochs.
    pub fn empty(epochs: usize) -> Self {
        ServiceFaultSchedule {
            events: vec![Vec::new(); epochs],
        }
    }

    /// Events scheduled at the start of `epoch`.
    pub fn events_at(&self, epoch: usize) -> &[ServiceFaultEvent] {
        self.events.get(epoch).map_or(&[], Vec::as_slice)
    }

    /// Total scheduled events.
    pub fn fault_count(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }
}

impl ServiceFaultPlan {
    /// Expands the plan into its deterministic schedule. The stream is
    /// salted away from [`super::FaultPlan`]'s so control-plane and
    /// service-path schedules sharing a seed stay independent.
    pub fn schedule(&self, epochs: usize) -> ServiceFaultSchedule {
        let mut rng = ChaosRng::new(self.seed ^ 0x5EE7_1CE0_0D15_EA5E);
        let c = &self.config;
        let mut events = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut at = Vec::new();
            if rng.chance(c.burst_prob) {
                let span = c.burst_factor_max.max(2) - 1;
                at.push(ServiceFaultEvent::RequestBurst {
                    factor: 2 + (rng.next_u64() % u64::from(span)) as u32,
                });
            }
            if rng.chance(c.slow_consumer_prob) {
                at.push(ServiceFaultEvent::SlowConsumer {
                    epochs: 1 + (rng.next_u64() % u64::from(c.stall_epochs_max.max(1))) as u32,
                });
            }
            if rng.chance(c.wal_stall_prob) {
                at.push(ServiceFaultEvent::WalStall {
                    epochs: 1 + (rng.next_u64() % u64::from(c.stall_epochs_max.max(1))) as u32,
                });
            }
            if rng.chance(c.short_write_prob) {
                // Caps in a band that lets small frames through but tears
                // the bigger decision/snapshot frames.
                at.push(ServiceFaultEvent::WalShortWrite {
                    cap: 40 + rng.index(360),
                });
            }
            if rng.chance(c.crash_prob) {
                at.push(ServiceFaultEvent::ControllerCrash);
            }
            events.push(at);
        }
        ServiceFaultSchedule { events }
    }
}

/// Deterministic request-trace knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceTraceConfig {
    /// Seed for the trace's private RNG stream.
    pub seed: u64,
    /// Mutation requests per epoch (before any burst multiplier).
    pub requests_per_epoch: usize,
    /// Fraction of mutations that are resizes (of a guessed live seq).
    pub resize_frac: f64,
    /// Fraction of mutations that are removes.
    pub remove_frac: f64,
}

impl Default for ServiceTraceConfig {
    fn default() -> Self {
        ServiceTraceConfig {
            seed: 42,
            requests_per_epoch: 24,
            resize_frac: 0.15,
            remove_frac: 0.15,
        }
    }
}

/// Generates the full `(tick, request)` trace up front — one vec per
/// epoch, independent of any faults, so fault schedules never perturb the
/// stimulus they are injected into.
pub fn generate_trace(
    cfg: &ServiceTraceConfig,
    epochs: usize,
    epoch_ticks: u64,
) -> Vec<Vec<(u64, Request)>> {
    let mut rng = ChaosRng::new(cfg.seed ^ 0x072A_CE7A_B1E5_u64);
    let mut out = Vec::with_capacity(epochs);
    let mut tag = 0u64;
    for e in 0..epochs as u64 {
        let base = e * epoch_ticks;
        let mut reqs = Vec::with_capacity(cfg.requests_per_epoch);
        for i in 0..cfg.requests_per_epoch as u64 {
            let tick = base + 1 + i * epoch_ticks.max(1) / (cfg.requests_per_epoch as u64 + 1);
            let priority = 1 + rng.index(9) as u8;
            let roll = rng.uniform();
            tag += 1;
            let req = if roll < cfg.resize_frac {
                Request::Resize {
                    priority,
                    target_seq: rng.next_u64() % (tag + 8),
                    demand: demand_sample(&mut rng),
                    deadline_ticks: 0,
                    tag,
                }
            } else if roll < cfg.resize_frac + cfg.remove_frac {
                Request::Remove {
                    priority,
                    target_seq: rng.next_u64() % (tag + 8),
                    deadline_ticks: 0,
                    tag,
                }
            } else {
                Request::Admit {
                    priority,
                    demand: demand_sample(&mut rng),
                    deadline_ticks: 2 * epoch_ticks + rng.next_u64() % (4 * epoch_ticks.max(1)),
                    tag,
                }
            };
            reqs.push((tick, req));
        }
        out.push(reqs);
    }
    out
}

fn demand_sample(rng: &mut ChaosRng) -> Resources {
    Resources::new(
        4.0 + rng.uniform() * 20.0,
        0.5 + rng.uniform() * 3.5,
        10.0 + rng.uniform() * 90.0,
    )
}

/// The outcome of one service soak run.
#[derive(Clone, Debug)]
pub struct ServiceSoakRun {
    /// Per-epoch serving metrics (one record per trace epoch, stalled
    /// epochs included).
    pub records: Vec<ServiceEpochRecord>,
    /// Controller crash-restarts performed (scheduled + fault-forced).
    pub crashes: u64,
    /// Crash-restarts forced by mid-commit journal failures.
    pub forced_recoveries: u64,
    /// Epochs that stalled on an unavailable journal.
    pub stalled_epochs: u64,
    /// Outcome notifications observed (drained from the outbox).
    pub outcomes_drained: u64,
    /// Final journal bytes (the durable artifact of the whole run).
    pub final_wal: Vec<u8>,
    /// True when every crash-restart stayed on the recovered journal's
    /// timeline (prefix-exact); any divergence flips this to false.
    pub replay_consistent: bool,
}

impl ServiceSoakRun {
    /// Totals of the stable backpressure counters across the run:
    /// `(sheds, rejects, max queue depth)`.
    pub fn backpressure_totals(&self) -> (u64, u64, u64) {
        let sheds = self
            .records
            .iter()
            .map(|r| r.shed_queue + r.shed_planner)
            .sum();
        let rejects = self
            .records
            .iter()
            .map(|r| r.rejected_queue + r.rejected_throttle + r.rejected_wal)
            .sum();
        let depth = self
            .records
            .iter()
            .map(|r| r.queue_depth_max)
            .max()
            .unwrap_or(0);
        (sheds, rejects, depth)
    }
}

/// Soak configuration: daemon config + trace + fault plan + length.
#[derive(Clone, Debug)]
pub struct ServiceSoakConfig {
    /// The daemon configuration under test.
    pub service: ServiceConfig,
    /// Request-trace knobs.
    pub trace: ServiceTraceConfig,
    /// Service-path fault plan.
    pub faults: ServiceFaultPlan,
    /// Number of epochs to drive.
    pub epochs: usize,
}

/// Drives a [`PlacementDaemon`] through a seeded request trace under a
/// seeded service-fault schedule. Deterministic end to end: the same
/// `(tree, config)` pair reproduces the identical [`ServiceSoakRun`],
/// byte-identical journal included.
pub fn run_service_soak(tree: &DcTree, cfg: &ServiceSoakConfig) -> ServiceSoakRun {
    let trace = generate_trace(&cfg.trace, cfg.epochs, cfg.service.epoch_ticks);
    let schedule = cfg.faults.schedule(cfg.epochs);
    let mut daemon = PlacementDaemon::new(cfg.service.clone(), tree.clone());

    let mut run = ServiceSoakRun {
        records: Vec::with_capacity(cfg.epochs),
        crashes: 0,
        forced_recoveries: 0,
        stalled_epochs: 0,
        outcomes_drained: 0,
        final_wal: Vec::new(),
        replay_consistent: true,
    };
    let mut stall_left = 0u32;
    let mut slow_left = 0u32;

    for (epoch, reqs) in trace.iter().enumerate() {
        let mut burst = 1u32;
        let mut short_write: Option<usize> = None;
        for ev in schedule.events_at(epoch) {
            match *ev {
                ServiceFaultEvent::RequestBurst { factor } => burst = factor,
                ServiceFaultEvent::SlowConsumer { epochs } => slow_left = slow_left.max(epochs),
                ServiceFaultEvent::WalStall { epochs } => stall_left = stall_left.max(epochs),
                ServiceFaultEvent::WalShortWrite { cap } => short_write = Some(cap),
                ServiceFaultEvent::ControllerCrash => {
                    let wal = daemon.wal_bytes().to_vec();
                    match PlacementDaemon::recover(cfg.service.clone(), tree.clone(), &wal) {
                        Ok((d, _)) => {
                            run.crashes += 1;
                            if !wal_prefix_ok(&wal, d.wal_bytes()) {
                                run.replay_consistent = false;
                            }
                            daemon = d;
                        }
                        Err(_) => run.replay_consistent = false,
                    }
                }
            }
        }

        let stalled = stall_left > 0;
        daemon.set_wal_fault(stalled.then_some(WriteFault::DiskFull));

        // Submit the epoch's arrivals (burst replays re-tag by round).
        for round in 0..u64::from(burst) {
            for (tick, req) in reqs {
                let req = if round == 0 {
                    req.clone()
                } else {
                    retag(req, round)
                };
                let _ = daemon.submit(*tick, req);
            }
        }

        // Arm the one-shot short write for the commit.
        if let Some(cap) = short_write {
            if !stalled {
                daemon.set_wal_fault(Some(WriteFault::ShortWrite(cap)));
            }
        }

        match daemon.commit_epoch(epoch as u64) {
            Ok(rec) => {
                if rec.stalled {
                    run.stalled_epochs += 1;
                }
                run.records.push(rec);
                daemon.set_wal_fault(None);
            }
            Err(_) => {
                // Mid-commit journal death: crash-restart from the log.
                // Recovery rolls the epoch forward to its commit.
                let wal = daemon.wal_bytes().to_vec();
                match PlacementDaemon::recover(cfg.service.clone(), tree.clone(), &wal) {
                    Ok((d, _)) => {
                        run.crashes += 1;
                        run.forced_recoveries += 1;
                        if !wal_prefix_ok(d.wal_bytes(), &wal)
                            && !wal_prefix_ok(&wal, d.wal_bytes())
                        {
                            run.replay_consistent = false;
                        }
                        daemon = d;
                        run.records
                            .push(rolled_forward_record(epoch as u64, &daemon));
                    }
                    Err(_) => {
                        run.replay_consistent = false;
                        daemon.set_wal_fault(None);
                    }
                }
            }
        }

        if slow_left > 0 {
            slow_left -= 1;
        } else {
            run.outcomes_drained += daemon.drain_outbox().len() as u64;
        }
        stall_left = stall_left.saturating_sub(1);
    }

    run.final_wal = daemon.wal_bytes().to_vec();
    run
}

/// The stand-in epoch record for a commit completed by crash recovery
/// (the live record died with the process; volatile counters are gone,
/// but the durable outcome is inspectable).
fn rolled_forward_record(epoch: u64, d: &PlacementDaemon) -> ServiceEpochRecord {
    ServiceEpochRecord {
        epoch,
        live: d.live(),
        queue_depth_end: d.queue_depth() as u64,
        wal_bytes: d.wal_bytes().len() as u64,
        ..ServiceEpochRecord::default()
    }
}

fn retag(req: &Request, round: u64) -> Request {
    let bump = round << 32;
    match *req {
        Request::Admit {
            priority,
            demand,
            deadline_ticks,
            tag,
        } => Request::Admit {
            priority,
            demand,
            deadline_ticks,
            tag: tag | bump,
        },
        Request::Resize {
            priority,
            target_seq,
            demand,
            deadline_ticks,
            tag,
        } => Request::Resize {
            priority,
            target_seq,
            demand,
            deadline_ticks,
            tag: tag | bump,
        },
        Request::Remove {
            priority,
            target_seq,
            deadline_ticks,
            tag,
        } => Request::Remove {
            priority,
            target_seq,
            deadline_ticks,
            tag: tag | bump,
        },
        Request::Query { target_seq, tag } => Request::Query {
            target_seq,
            tag: tag | bump,
        },
    }
}

fn wal_prefix_ok(longer: &[u8], prefix: &[u8]) -> bool {
    longer.len() >= prefix.len() && &longer[..prefix.len()] == prefix
}

/// Transport-layer chaos configuration: a fleet of real
/// [`ServiceClient`]s driven over the deterministic [`SimNet`] fault
/// fabric, with seeded socket faults and kill -9 restarts.
#[derive(Clone, Debug)]
pub struct TransportChaosConfig {
    /// The daemon configuration under test.
    pub service: ServiceConfig,
    /// Fabric tunables (epoch pump, caps, idle deadline).
    pub net: SimNetConfig,
    /// Seeded socket-fault rates.
    pub faults: SimFaultConfig,
    /// Number of concurrent client identities.
    pub clients: usize,
    /// Rounds of traffic to drive.
    pub rounds: usize,
    /// Logical calls per client per round.
    pub calls_per_round: usize,
    /// Fraction of calls that remove a previously admitted container.
    pub remove_frac: f64,
    /// Per-round probability of a kill -9 + journal recovery.
    pub crash_prob: f64,
    /// Virtual milliseconds to advance between rounds.
    pub advance_ms: u64,
    /// Seed for the runner's own decision stream (crashes, call mix).
    pub seed: u64,
}

impl Default for TransportChaosConfig {
    fn default() -> Self {
        TransportChaosConfig {
            service: ServiceConfig::default(),
            net: SimNetConfig::default(),
            faults: SimFaultConfig::quiet(42),
            clients: 8,
            rounds: 12,
            calls_per_round: 4,
            remove_frac: 0.3,
            crash_prob: 0.15,
            advance_ms: 60,
            seed: 42,
        }
    }
}

/// The outcome of one transport chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct TransportChaosRun {
    /// Logical calls issued across all clients.
    pub calls: u64,
    /// Calls that returned a durable sequence number.
    pub ok: u64,
    /// Calls whose accept was shed under overload (typed, with seq).
    pub typed_shed: u64,
    /// Calls whose accept expired before commit (typed, with seq).
    pub typed_expired: u64,
    /// Calls rejected with backpressure through every attempt.
    pub overloaded: u64,
    /// Calls that exhausted retries at the transport level.
    pub transport_failed: u64,
    /// Distinct accepts observed more than once — double placements.
    /// Zero is the idempotency invariant.
    pub duplicate_seqs: u64,
    /// Accepts the daemon journaled that no client observed. Exact (and
    /// required zero) when `transport_failed == 0`.
    pub lost_accepts: u64,
    /// Client reconnects summed across the fleet.
    pub reconnects: u64,
    /// kill -9 restarts performed.
    pub crashes: u64,
    /// Every recovery stayed on the journal's timeline (prefix-exact).
    pub replay_consistent: bool,
    /// Fabric fault counters.
    pub sim: SimStats,
    /// Containers live at the end.
    pub final_live: u64,
    /// Final journal bytes.
    pub final_wal: Vec<u8>,
}

/// Drives `clients` real [`ServiceClient`]s over a seeded [`SimNet`]
/// fault fabric: connections are cut mid-frame, reads split, writers
/// stalled, peers half-open, and the daemon is kill -9'd and recovered
/// from its journal mid-traffic. Deterministic end to end.
///
/// The invariant checked downstream: every call outcome carrying a seq
/// (`Ok`, `Shed`, `Expired`) maps to exactly one journaled accept —
/// retries through all that weather never double-place, and (absent
/// transport-exhausted calls) never lose an accept.
pub fn run_transport_chaos(tree: &DcTree, cfg: &TransportChaosConfig) -> TransportChaosRun {
    use std::collections::BTreeSet;

    let net = SimNet::new(cfg.service.clone(), tree.clone(), cfg.net, cfg.faults);
    let mut rng = ChaosRng::new(cfg.seed ^ 0x7A11_5B0B_17C0_DE5A);
    let mut clients: Vec<ServiceClient<SimTransport>> = (0..cfg.clients)
        .map(|i| {
            ServiceClient::new(
                net.transport(),
                ClientConfig {
                    client_id: 1 + i as u64,
                    request_timeout_ms: 200,
                    max_attempts: 16,
                    backoff_base_ms: 2,
                    backoff_cap_ms: 40,
                    jitter_seed: cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
                    ..ClientConfig::default()
                },
            )
        })
        .collect();
    let mut pools: Vec<Vec<u64>> = vec![Vec::new(); cfg.clients];

    let mut run = TransportChaosRun {
        calls: 0,
        ok: 0,
        typed_shed: 0,
        typed_expired: 0,
        overloaded: 0,
        transport_failed: 0,
        duplicate_seqs: 0,
        lost_accepts: 0,
        reconnects: 0,
        crashes: 0,
        replay_consistent: true,
        sim: SimStats::default(),
        final_live: 0,
        final_wal: Vec::new(),
    };
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut observe = |run: &mut TransportChaosRun, seq: u64| {
        if !seen.insert(seq) {
            run.duplicate_seqs += 1;
        }
    };

    for _round in 0..cfg.rounds {
        if rng.chance(cfg.crash_prob) {
            // kill -9 with the journal intact (the in-memory WAL *is* the
            // durable medium); recovery may append roll-forward records
            // but must never rewrite history.
            let before = net.with_daemon(|d| d.wal_bytes().to_vec());
            match net.crash_restart(None) {
                Ok(_) => {
                    run.crashes += 1;
                    let after = net.with_daemon(|d| d.wal_bytes().to_vec());
                    if !wal_prefix_ok(&after, &before) {
                        run.replay_consistent = false;
                    }
                }
                Err(_) => run.replay_consistent = false,
            }
        }
        for (ci, client) in clients.iter_mut().enumerate() {
            for _ in 0..cfg.calls_per_round {
                run.calls += 1;
                let priority = 1 + rng.index(9) as u8;
                let do_remove = !pools[ci].is_empty() && rng.chance(cfg.remove_frac);
                let outcome = if do_remove {
                    let pick = rng.index(pools[ci].len());
                    let target = pools[ci].remove(pick);
                    client.remove(target, priority, 0)
                } else {
                    client.admit(priority, demand_sample_sm(&mut rng), 0)
                };
                match outcome {
                    Ok(seq) => {
                        run.ok += 1;
                        observe(&mut run, seq);
                        if !do_remove {
                            pools[ci].push(seq);
                        }
                    }
                    Err(ClientError::Shed { seq }) => {
                        run.typed_shed += 1;
                        observe(&mut run, seq);
                    }
                    Err(ClientError::Expired { seq }) => {
                        run.typed_expired += 1;
                        observe(&mut run, seq);
                    }
                    Err(ClientError::Overloaded { .. }) => run.overloaded += 1,
                    Err(ClientError::Transport(_)) => run.transport_failed += 1,
                    Err(_) => run.replay_consistent = false,
                }
            }
        }
        net.advance(cfg.advance_ms);
    }

    for c in &clients {
        run.reconnects += c.stats().reconnects;
    }
    run.lost_accepts = net
        .with_daemon(|d| d.seqs_issued())
        .saturating_sub(seen.len() as u64);
    run.sim = net.stats();
    run.final_live = net.with_daemon(|d| d.live());
    run.final_wal = net.with_daemon(|d| d.wal_bytes().to_vec());
    run
}

fn demand_sample_sm(rng: &mut ChaosRng) -> Resources {
    Resources::new(
        4.0 + rng.uniform() * 16.0,
        0.5 + rng.uniform() * 2.5,
        10.0 + rng.uniform() * 40.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldilocks_topology::builders::single_rack;

    fn tree() -> DcTree {
        single_rack(4, Resources::new(100.0, 16.0, 1000.0), 1000.0)
    }

    fn soak_cfg(seed: u64) -> ServiceSoakConfig {
        ServiceSoakConfig {
            service: ServiceConfig {
                queue_capacity: 16,
                batch_max: 16,
                bucket_capacity: 48,
                tokens_per_epoch: 32,
                snapshot_every: 4,
                ..ServiceConfig::default()
            },
            trace: ServiceTraceConfig {
                seed,
                ..ServiceTraceConfig::default()
            },
            faults: ServiceFaultPlan {
                seed,
                config: ServiceFaultPlanConfig::default(),
            },
            epochs: 12,
        }
    }

    #[test]
    fn soak_replays_byte_identically() {
        let a = run_service_soak(&tree(), &soak_cfg(7));
        let b = run_service_soak(&tree(), &soak_cfg(7));
        assert!(a.replay_consistent);
        assert_eq!(a.final_wal, b.final_wal, "soak must be deterministic");
        assert_eq!(a.records, b.records);
        assert_eq!(
            (a.crashes, a.forced_recoveries, a.stalled_epochs),
            (b.crashes, b.forced_recoveries, b.stalled_epochs)
        );
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let plan = ServiceFaultPlan {
            seed: 3,
            config: ServiceFaultPlanConfig::default(),
        };
        let s1 = plan.schedule(50);
        let s2 = plan.schedule(50);
        for e in 0..50 {
            assert_eq!(s1.events_at(e), s2.events_at(e));
        }
        let other = ServiceFaultPlan {
            seed: 4,
            config: ServiceFaultPlanConfig::default(),
        }
        .schedule(50);
        assert!(
            (0..50).any(|e| s1.events_at(e) != other.events_at(e)),
            "different seeds must differ somewhere"
        );
        assert!(s1.fault_count() > 0);
    }

    fn transport_cfg(seed: u64) -> TransportChaosConfig {
        TransportChaosConfig {
            service: ServiceConfig {
                queue_capacity: 64,
                batch_max: 64,
                bucket_capacity: 256,
                tokens_per_epoch: 128,
                snapshot_every: 8,
                ..ServiceConfig::default()
            },
            faults: SimFaultConfig {
                seed,
                cut_per_write: 0.08,
                partial_write: 0.20,
                stall_on_connect: 0.08,
                unstall_per_read: 0.25,
                chunked_reads: true,
            },
            seed,
            ..TransportChaosConfig::default()
        }
    }

    #[test]
    fn transport_chaos_replays_byte_identically() {
        let a = run_transport_chaos(&tree(), &transport_cfg(13));
        let b = run_transport_chaos(&tree(), &transport_cfg(13));
        assert_eq!(a, b, "transport chaos must be deterministic");
        // The faults actually fired: the run is not vacuous.
        assert!(a.sim.cuts > 0 || a.sim.stalls > 0, "no socket faults fired");
        assert!(a.reconnects > 0, "no client ever had to reconnect");
        assert!(a.crashes > 0, "no kill -9 was rolled");
    }

    #[test]
    fn transport_chaos_never_duplicates_or_loses_accepts() {
        let run = run_transport_chaos(&tree(), &transport_cfg(13));
        assert!(run.replay_consistent, "a recovery rewrote journal history");
        assert_eq!(run.duplicate_seqs, 0, "a retry double-placed");
        assert_eq!(
            run.transport_failed, 0,
            "a call exhausted its retries; raise attempts or lower fault rates"
        );
        assert_eq!(run.lost_accepts, 0, "a journaled accept vanished");
        assert!(run.ok > 0);
    }

    #[test]
    fn quiet_transport_run_is_fault_free() {
        let mut cfg = transport_cfg(5);
        cfg.faults = SimFaultConfig::quiet(5);
        cfg.crash_prob = 0.0;
        let run = run_transport_chaos(&tree(), &cfg);
        assert_eq!(run.transport_failed, 0);
        assert_eq!(run.duplicate_seqs, 0);
        assert_eq!(run.lost_accepts, 0);
        assert_eq!(run.crashes, 0);
        assert_eq!(run.reconnects, 0);
        assert_eq!(run.sim.cuts + run.sim.stalls + run.sim.overflows, 0);
        assert_eq!(
            run.calls,
            run.ok + run.typed_shed + run.typed_expired + run.overloaded
        );
    }

    #[test]
    fn quiescent_soak_has_no_chaos_artifacts() {
        let mut cfg = soak_cfg(11);
        cfg.faults.config = ServiceFaultPlanConfig::quiescent();
        let run = run_service_soak(&tree(), &cfg);
        assert_eq!(run.crashes, 0);
        assert_eq!(run.forced_recoveries, 0);
        assert_eq!(run.stalled_epochs, 0);
        assert!(run.replay_consistent);
        assert_eq!(run.records.len(), 12);
        // No WAL rejections without WAL faults.
        assert!(run.records.iter().all(|r| r.rejected_wal == 0));
    }
}
