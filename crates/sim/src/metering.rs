//! Deterministic sharded flow metering.
//!
//! The reference TCT path ([`crate::latency`]) is a clean executable spec,
//! but it pays three per-flow costs the epoch driver cannot afford at
//! fat-tree scale: a `BTreeMap` of link loads (log-time entry per crossed
//! uplink), a freshly allocated `Vec` of crossed uplinks per flow, and a
//! **second** LCA climb per flow when the TCT pass re-derives the links the
//! load pass already walked. This module replaces all three with dense
//! arrays and a reusable [`MeteringWorkspace`], and shards the flow list
//! across scoped worker threads without giving up bit-exact determinism.
//!
//! ## Shard/reduce contract
//!
//! Flows are cut into fixed-size chunks of
//! [`ParallelConfig::metering_chunk_flows`]. Each chunk independently
//! produces (a) a dense per-node link-load partial, (b) a per-flow
//! crossed-uplink table (one climb per flow, reused by the TCT pass), and
//! (c) weighted-TCT partial sums. Partials are then combined **in ascending
//! chunk order** on the calling thread. Because chunk boundaries depend only
//! on the chunk size — never on the thread count or the scheduler — the
//! floating-point association order of every metered quantity is a function
//! of the chunk size alone: runs at 1, 2, 4 and 8 threads are byte-identical
//! by construction, and a single-chunk run reproduces the reference path's
//! flow-order association bit-for-bit.
//!
//! Within a flow, crossed uplinks are visited in the reference path's exact
//! interleaved deepest-first order (a-side wins depth ties), replayed over
//! per-server ancestor chains precomputed once per call — so the per-flow
//! network sum associates identically to [`crate::latency::mean_tct_ms`].
//!
//! Worker threads never share mutable state: each owns a disjoint
//! contiguous range of chunk scratches for the duration of a scope. If a
//! scope cannot run (a worker died), the engine recomputes every chunk on
//! the calling thread — same partials, same result — rather than panicking.

use goldilocks_partition::ParallelConfig;
use goldilocks_placement::Placement;
use goldilocks_topology::{DcTree, NodeId};
use goldilocks_workload::{Flow, Workload};

use crate::latency::LatencyModel;

/// Sentinel for an unplaced flow endpoint in the per-flow endpoint table.
const UNPLACED: u32 = u32::MAX;

/// Per-chunk scratch: everything one flow chunk produces in a metering pass.
///
/// All buffers are cleared (never shrunk) between epochs, so a warm
/// workspace performs no heap allocation.
#[derive(Debug, Default)]
struct ChunkScratch {
    /// Resolved server endpoints per flow in the chunk; [`UNPLACED`] marks a
    /// missing assignment (the flow is skipped, exactly as in the reference
    /// path).
    eps: Vec<(u32, u32)>,
    /// Offsets into `links` per flow in the chunk (length = flows + 1).
    offsets: Vec<u32>,
    /// Crossed-uplink node ids of every flow in the chunk, concatenated, in
    /// the reference interleaved climb order.
    links: Vec<u32>,
    /// Dense per-node link-load partial (Mbps), indexed by `NodeId`.
    loads: Vec<f64>,
    /// Weighted-TCT partial sum of the chunk's filtered flows.
    weighted: f64,
    /// Flow-count weight partial sum of the chunk's filtered flows.
    weight: f64,
    /// Per-flow `(tct_ms, weight)` samples of the chunk's filtered flows.
    tcts: Vec<(f64, f64)>,
}

/// Reusable scratch memory for the sharded metering engine.
///
/// One workspace serves one policy run: the epoch driver keeps it across
/// epochs so the per-server ancestor chains, the per-chunk scratches and the
/// combined link-load array are allocated once and reused. A warm call is
/// allocation-free (locked by `sim/tests/metering_alloc_lock.rs`).
#[derive(Debug, Default)]
pub struct MeteringWorkspace {
    /// CSR offsets of per-server ancestor chains (length = servers + 1).
    chain_off: Vec<u32>,
    /// Ancestor node ids, leaf NIC first, root last, all servers
    /// concatenated.
    chain_nodes: Vec<u32>,
    /// Depth of each entry of `chain_nodes` (avoids a tree lookup per climb
    /// step).
    chain_depths: Vec<u32>,
    /// Per-chunk scratches; grown on demand, inner buffers reused.
    chunks: Vec<ChunkScratch>,
    /// Combined dense link loads (Mbps), indexed by `NodeId`.
    loads: Vec<f64>,
}

impl MeteringWorkspace {
    /// An empty workspace; buffers grow to the scenario's high-water mark on
    /// first use and are reused afterwards.
    pub fn new() -> Self {
        MeteringWorkspace::default()
    }

    /// The combined link load (Mbps) crossing `node`'s uplink, as of the
    /// most recent metering call. Nodes no flow crossed read 0.
    pub fn link_load(&self, node: NodeId) -> f64 {
        self.loads.get(node.0).copied().unwrap_or(0.0)
    }

    /// The combined dense link-load array of the most recent metering call,
    /// indexed by `NodeId`.
    pub fn link_loads_dense(&self) -> &[f64] {
        &self.loads
    }

    /// Rebuilds the per-server ancestor chains for `tree`. O(servers ×
    /// depth) with no allocation when warm — cheap enough to run every call,
    /// which keeps the workspace sound when the caller switches trees
    /// (the chaos driver meters fault-mutated working copies).
    fn build_chains(&mut self, tree: &DcTree) {
        self.chain_off.clear();
        self.chain_nodes.clear();
        self.chain_depths.clear();
        self.chain_off.push(0);
        for s in 0..tree.server_count() {
            let mut node = tree.server(goldilocks_topology::ServerId(s)).node;
            loop {
                self.chain_nodes.push(node.0 as u32);
                self.chain_depths.push(tree.node(node).depth as u32);
                match tree.node(node).parent {
                    Some(p) => node = p,
                    None => break,
                }
            }
            self.chain_off.push(self.chain_nodes.len() as u32);
        }
    }
}

/// How a metering pass is cut into chunks and workers.
#[derive(Clone, Copy, Debug)]
struct ShardPlan {
    /// Fixed chunk size in flows (association-order knob).
    chunk: usize,
    /// Number of chunks covering the flow list (≥ 1).
    n_chunks: usize,
    /// Worker threads to spawn (1 = run on the calling thread).
    workers: usize,
}

impl ShardPlan {
    fn for_flows(flows: usize, parallel: &ParallelConfig) -> ShardPlan {
        let chunk = parallel.metering_chunk();
        let n_chunks = flows.div_ceil(chunk).max(1);
        let workers = if parallel.threads <= 1 || flows < parallel.min_parallel_flows {
            1
        } else {
            parallel.threads.min(n_chunks)
        };
        ShardPlan {
            chunk,
            n_chunks,
            workers,
        }
    }

    /// The flow range of chunk `c`.
    fn flow_range(&self, c: usize, flows: usize) -> std::ops::Range<usize> {
        let lo = c * self.chunk;
        lo..flows.min(lo + self.chunk)
    }
}

/// Splits `scratches` into `workers` contiguous, balanced sub-slices and
/// returns them with the index of each sub-slice's first chunk. Only called
/// from [`run_sharded`], which is already an allocation boundary.
fn split_scratches(
    mut scratches: &mut [ChunkScratch],
    workers: usize,
) -> Vec<(usize, &mut [ChunkScratch])> {
    let total = scratches.len();
    let (base, extra) = (total / workers, total % workers);
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        let (head, tail) = scratches.split_at_mut(take);
        out.push((start, head));
        start += take;
        scratches = tail;
    }
    out
}

/// Phase B for one worker's chunk range: per-flow TCT over the combined
/// loads, reusing the crossed-uplink table phase A stored — no second climb.
#[allow(clippy::too_many_arguments)]
fn fill_chunk_tcts<F>(
    model: &LatencyModel,
    workload: &Workload,
    tree: &DcTree,
    loads: &[f64],
    server_cpu_utils: &[f64],
    filter: &F,
    plan: &ShardPlan,
    first_chunk: usize,
    scratches: &mut [ChunkScratch],
    collect_samples: bool,
) where
    F: Fn(&Flow) -> bool + Sync,
{
    for (k, scratch) in scratches.iter_mut().enumerate() {
        let range = plan.flow_range(first_chunk + k, workload.flows.len());
        scratch.weighted = 0.0;
        scratch.weight = 0.0;
        scratch.tcts.clear();
        for (i, f) in workload.flows[range].iter().enumerate() {
            if !filter(f) {
                continue;
            }
            let (sa, sb) = scratch.eps[i];
            if sa == UNPLACED {
                continue;
            }
            let util = |s: u32| server_cpu_utils.get(s as usize).copied().unwrap_or(0.0);
            let rho = util(sa).max(util(sb)).min(model.server_queue_cap);
            let service = model.base_service_ms / (1.0 - rho);
            // Two accumulators, one per reference association order: the
            // mean path sums hops into `net` and adds `service` at the end
            // (as `latency::mean_tct_ms` does), the sample path folds hops
            // into a running `tct` seeded with `service` (as
            // `latency::flow_tcts_ms` does). The orders differ at ulp level,
            // and each must reproduce its reference bit-for-bit.
            let mut net = 0.0;
            let mut tct = service;
            let (lo, hi) = (scratch.offsets[i] as usize, scratch.offsets[i + 1] as usize);
            for &node in &scratch.links[lo..hi] {
                let cap = tree.node(NodeId(node as usize)).uplink_mbps;
                let lr = if cap.is_finite() && cap > 0.0 {
                    (loads[node as usize] / cap).min(model.link_queue_cap)
                } else {
                    0.0
                };
                let hop = model.per_hop_ms / (1.0 - lr);
                net += hop;
                tct += hop;
            }
            let w = f.flow_count.max(1) as f64;
            scratch.weighted += (service + net) * w;
            scratch.weight += w;
            if collect_samples {
                scratch.tcts.push((tct, w));
            }
        }
    }
}

/// Runs `work(first_chunk, sub_slice)` over balanced contiguous chunk ranges
/// on `workers` scoped threads (or inline when `workers == 1`). If the scope
/// fails — a worker panicked mid-chunk — every chunk is deterministically
/// recomputed on the calling thread instead of propagating the panic, so the
/// engine stays panic-free and the partials stay exact.
// lint:allow(zero-alloc-hot-path) -- allocation boundary: thread-scope spawn
// and the O(workers) handle Vec; per-flow chunk fills stay allocation-free
fn run_sharded<W>(scratches: &mut [ChunkScratch], workers: usize, work: W)
where
    W: Fn(usize, &mut [ChunkScratch]) + Sync,
{
    if workers <= 1 || scratches.len() <= 1 {
        work(0, scratches);
        return;
    }
    let clean = {
        let parts = split_scratches(scratches, workers);
        let work = &work;
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|(first, slice)| s.spawn(move |_| work(first, slice)))
                .collect();
            handles.into_iter().all(|h| h.join().is_ok())
        })
        .unwrap_or(false)
    };
    if !clean {
        // A worker died; its chunks may be half-filled. Recompute everything
        // inline — chunk partials are pure functions of their inputs, so the
        // result is identical to a clean parallel pass.
        work(0, scratches);
    }
}

/// One fully metered epoch: combined link loads (left in `ws`), the weighted
/// mean TCT, and optionally the per-flow samples.
// analyze:hot-path -- warm metering core: steady-state epochs must not allocate
#[allow(clippy::too_many_arguments)]
fn meter_flows<F>(
    model: &LatencyModel,
    workload: &Workload,
    placement: &Placement,
    tree: &DcTree,
    server_cpu_utils: &[f64],
    filter: &F,
    parallel: &ParallelConfig,
    ws: &mut MeteringWorkspace,
    collect_samples: bool,
) -> f64
where
    F: Fn(&Flow) -> bool + Sync,
{
    ws.build_chains(tree);
    let plan = ShardPlan::for_flows(workload.flows.len(), parallel);
    if ws.chunks.len() < plan.n_chunks {
        ws.chunks.resize_with(plan.n_chunks, ChunkScratch::default);
    }

    // Phase A: per-chunk link-load partials + crossed-uplink tables.
    {
        // Split-borrow: chain tables immutably, chunk scratches mutably.
        let MeteringWorkspace {
            chain_off,
            chain_nodes,
            chain_depths,
            chunks,
            ..
        } = ws;
        let chains = MeteringChains {
            chain_off,
            chain_nodes,
            chain_depths,
        };
        run_sharded(
            &mut chunks[..plan.n_chunks],
            plan.workers,
            |first, slice| {
                fill_chunk_loads(&chains, workload, placement, tree, &plan, first, slice);
            },
        );
    }

    // Reduce: combine per-chunk load partials in ascending chunk order.
    // (Adding a chunk that never touched a node contributes `+ 0.0`, which
    // is exact for the non-negative loads this model produces.)
    let node_count = tree.node_count();
    if ws.loads.len() != node_count {
        ws.loads.resize(node_count, 0.0);
    }
    ws.loads.fill(0.0);
    for c in &ws.chunks[..plan.n_chunks] {
        for (slot, partial) in ws.loads.iter_mut().zip(&c.loads) {
            *slot += *partial;
        }
    }

    // Phase B: per-chunk TCT partials over the combined loads.
    {
        let loads = &ws.loads;
        let chunks = &mut ws.chunks[..plan.n_chunks];
        run_sharded(chunks, plan.workers, |first, slice| {
            fill_chunk_tcts(
                model,
                workload,
                tree,
                loads,
                server_cpu_utils,
                filter,
                &plan,
                first,
                slice,
                collect_samples,
            );
        });
    }

    // Reduce: combine TCT partials in ascending chunk order.
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for c in &ws.chunks[..plan.n_chunks] {
        weighted += c.weighted;
        weight += c.weight;
    }
    if weight > 0.0 {
        weighted / weight
    } else {
        0.0
    }
}

/// Immutable view of the workspace's chain tables, shareable across worker
/// threads while the chunk scratches are mutably split.
#[derive(Clone, Copy)]
struct MeteringChains<'a> {
    chain_off: &'a [u32],
    chain_nodes: &'a [u32],
    chain_depths: &'a [u32],
}

impl MeteringChains<'_> {
    fn chain(&self, s: u32) -> (&[u32], &[u32]) {
        let lo = self.chain_off[s as usize] as usize;
        let hi = self.chain_off[s as usize + 1] as usize;
        (&self.chain_nodes[lo..hi], &self.chain_depths[lo..hi])
    }
}

/// Phase A for one worker's chunk range: resolve endpoints, climb each
/// flow's crossed uplinks once (reference interleaved order), and
/// accumulate the dense link-load partial.
fn fill_chunk_loads(
    chains: &MeteringChains<'_>,
    workload: &Workload,
    placement: &Placement,
    tree: &DcTree,
    plan: &ShardPlan,
    first_chunk: usize,
    scratches: &mut [ChunkScratch],
) {
    let node_count = tree.node_count();
    for (k, scratch) in scratches.iter_mut().enumerate() {
        let range = plan.flow_range(first_chunk + k, workload.flows.len());
        scratch.eps.clear();
        scratch.offsets.clear();
        scratch.links.clear();
        scratch.offsets.push(0);
        if scratch.loads.len() != node_count {
            scratch.loads.resize(node_count, 0.0);
        }
        scratch.loads.fill(0.0);
        for f in &workload.flows[range] {
            let (sa, sb) = match (
                placement.assignment.get(f.a.0).copied().flatten(),
                placement.assignment.get(f.b.0).copied().flatten(),
            ) {
                (Some(a), Some(b)) => (a.0 as u32, b.0 as u32),
                _ => (UNPLACED, UNPLACED),
            };
            scratch.eps.push((sa, sb));
            if sa != UNPLACED && sa != sb {
                let (ca, da) = chains.chain(sa);
                let (cb, db) = chains.chain(sb);
                let (mut ia, mut ib) = (0usize, 0usize);
                // The reference climb, replayed over precomputed chains:
                // deeper side first, a-side on depth ties, one push per
                // step. The bounds checks only trip on a malformed forest
                // (two roots); the reference path would panic there instead.
                while ia < ca.len() && ib < cb.len() && ca[ia] != cb[ib] {
                    let (la, lb) = (da[ia], db[ib]);
                    if la >= lb {
                        scratch.links.push(ca[ia]);
                        scratch.loads[ca[ia] as usize] += f.mbps;
                        ia += 1;
                    }
                    if lb > la {
                        scratch.links.push(cb[ib]);
                        scratch.loads[cb[ib] as usize] += f.mbps;
                        ib += 1;
                    }
                }
            }
            scratch.offsets.push(scratch.links.len() as u32);
        }
    }
}

/// Sharded weighted mean TCT over the flows selected by `filter`, leaving
/// the combined dense link loads in `ws` (see
/// [`MeteringWorkspace::link_load`]). Bit-identical at any thread count for
/// a fixed [`ParallelConfig::metering_chunk_flows`]; with a single chunk it
/// reproduces [`crate::latency::mean_tct_ms`] bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn mean_tct_ms_sharded<F>(
    model: &LatencyModel,
    workload: &Workload,
    placement: &Placement,
    tree: &DcTree,
    server_cpu_utils: &[f64],
    filter: F,
    parallel: &ParallelConfig,
    ws: &mut MeteringWorkspace,
) -> f64
where
    F: Fn(&Flow) -> bool + Sync,
{
    meter_flows(
        model,
        workload,
        placement,
        tree,
        server_cpu_utils,
        &filter,
        parallel,
        ws,
        false,
    )
}

/// Sharded per-flow TCT samples `(tct_ms, weight)` in flow order (chunks
/// concatenated in ascending chunk order, flows in order within each
/// chunk — i.e. exactly the workload's flow order). Same determinism
/// contract as [`mean_tct_ms_sharded`].
#[allow(clippy::too_many_arguments)]
pub fn flow_tcts_ms_sharded<F>(
    model: &LatencyModel,
    workload: &Workload,
    placement: &Placement,
    tree: &DcTree,
    server_cpu_utils: &[f64],
    filter: F,
    parallel: &ParallelConfig,
    ws: &mut MeteringWorkspace,
) -> Vec<(f64, f64)>
where
    F: Fn(&Flow) -> bool + Sync,
{
    meter_flows(
        model,
        workload,
        placement,
        tree,
        server_cpu_utils,
        &filter,
        parallel,
        ws,
        true,
    );
    let plan = ShardPlan::for_flows(workload.flows.len(), parallel);
    let mut out = Vec::with_capacity(
        ws.chunks[..plan.n_chunks]
            .iter()
            .map(|c| c.tcts.len())
            .sum(),
    );
    for c in &ws.chunks[..plan.n_chunks] {
        out.extend_from_slice(&c.tcts);
    }
    out
}

/// A [`ParallelConfig`] that runs the metering engine as a single chunk on
/// the calling thread — the reference association order (flow order), used
/// by the spec-path delegations in [`crate::latency`].
pub fn single_chunk_reference() -> ParallelConfig {
    ParallelConfig {
        threads: 1,
        metering_chunk_flows: usize::MAX,
        ..ParallelConfig::default()
    }
}
