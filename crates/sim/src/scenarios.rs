//! Calibrated experiment scenarios for the paper's evaluation (Section VI).
//!
//! Each builder reproduces the *setup* the paper describes and calibrates
//! demand so that the stated baseline utilization holds (e.g. "the average
//! server utilization for E-PVM is 32 %" in the Wikipedia experiment).
//! Calibration scales CPU demand only; memory footprints are set to
//! testbed-plausible values so that memory bounds — not dominates — the
//! packing (the Table II nominal profiles are preserved in
//! `goldilocks-workload`).

use goldilocks_cluster::MigrationModel;
use goldilocks_topology::{builders, Resources};
use goldilocks_workload::generators::{azure_mix, twitter_caching};
use goldilocks_workload::mstrace::{search_trace, SearchTraceConfig};
use goldilocks_workload::traces::{azure_container_counts, correlated_loads, wikipedia_rps};
use goldilocks_workload::{CorrelatedLoadStream, Workload};

use crate::energy::PowerConfig;
use crate::epoch::{EpochSpec, Scenario};
use crate::latency::LatencyModel;

/// Scales every container's CPU demand so the *average* epoch demand equals
/// `target_avg_util` of the total CPU capacity, clamped so the *peak* epoch
/// stays at or below `peak_cap_util`.
fn calibrate_cpu(
    workload: &mut Workload,
    total_capacity_cpu: f64,
    mean_load_factor: f64,
    peak_load_factor: f64,
    target_avg_util: f64,
    peak_cap_util: f64,
) {
    let base_cpu = workload.total_demand().cpu;
    if base_cpu <= 0.0 {
        return;
    }
    let by_avg = target_avg_util * total_capacity_cpu / (mean_load_factor * base_cpu);
    let by_peak = peak_cap_util * total_capacity_cpu / (peak_load_factor * base_cpu);
    let scale = by_avg.min(by_peak);
    for c in &mut workload.containers {
        c.demand.cpu *= scale;
    }
}

/// The Fig. 9 experiment: Twitter content caching on the Wikipedia trace
/// pattern. The paper's full configuration is `wiki_testbed(60, 176, seed)`:
/// 176 containers on the 16-server testbed, 60 one-minute epochs, RPS
/// sweeping 44 K–440 K, E-PVM average utilization ≈ 32 %.
pub fn wiki_testbed(epochs: usize, containers: usize, seed: u64) -> Scenario {
    let tree = builders::testbed_16();
    let mut base = twitter_caching(containers, seed);
    // Testbed-plausible cache footprints (memory bounds the packers without
    // dominating CPU-driven behaviour).
    for c in &mut base.containers {
        c.demand.memory_gb = if c.app == "memcached-frontend" {
            0.5
        } else {
            2.0
        };
    }
    let mut base = base.shuffled(seed ^ 0x5_4u64);
    let trace = wikipedia_rps(epochs, 44_000.0, 440_000.0);
    let fracs: Vec<f64> = trace.values.iter().map(|v| v / trace.max()).collect();
    let mean_frac = fracs.iter().sum::<f64>() / fracs.len() as f64;
    let total_cpu = tree.server_count() as f64 * 3200.0;
    calibrate_cpu(&mut base, total_cpu, mean_frac, 1.0, 0.32, 0.66);

    let epochs_spec = fracs
        .iter()
        .zip(&trace.values)
        .map(|(&f, &rps)| EpochSpec {
            load_factor: f,
            container_count: containers,
            rps,
        })
        .collect();

    Scenario {
        name: "fig9-wiki-twitter-caching".into(),
        tree,
        base,
        epochs: epochs_spec,
        epoch_seconds: 60.0,
        power: PowerConfig::testbed(),
        latency: LatencyModel::default(),
        migration: MigrationModel::default(),
        per_container_load: None,
        per_container_stream: None,
        tct_app_prefix: Some("memcached".into()),
        reservation_factor: 1.0,
    }
}

/// The Fig. 10 experiment: a rich mixture of seven applications following
/// the Azure trace pattern — container counts wander between `min_count` and
/// `max_count` (paper: 149–221) with Pearson-correlated (~0.7) per-container
/// bursts, E-PVM average utilization ≈ 54 %.
pub fn azure_testbed(epochs: usize, seed: u64) -> Scenario {
    azure_testbed_sized(epochs, 149, 221, seed)
}

/// [`azure_testbed`] with custom container-count bounds (for fast tests).
pub fn azure_testbed_sized(
    epochs: usize,
    min_count: usize,
    max_count: usize,
    seed: u64,
) -> Scenario {
    let tree = builders::testbed_16();
    let mut base = azure_mix(max_count + max_count / 20 + 4, seed);
    // Memory and network at Table II scale swamp a 16-server / 1 GbE
    // testbed; scale footprints to testbed-plausible sizes so CPU — the
    // dimension the power argument is about — stays the binding resource.
    for c in &mut base.containers {
        c.demand.memory_gb = (c.demand.memory_gb * 0.15).max(0.3);
        c.demand.network_mbps *= 0.35;
    }
    for f in &mut base.flows {
        f.mbps *= 0.35;
    }
    let base = base.shuffled(seed ^ 0x5_4u64);
    let mut base = base;
    let counts = azure_container_counts(epochs, min_count, max_count, seed);
    let mean_count = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    let total_cpu = tree.server_count() as f64 * 3200.0;
    // Load factor per epoch is 1.0; count variation and the correlated
    // multipliers (±20 %) provide the fluctuation. Calibrate against the
    // mean count, clamping the burst peak near the packers' cap.
    let mean_frac = mean_count / base.len() as f64;
    let peak_frac = max_count as f64 / base.len() as f64 * 1.2;
    calibrate_cpu(&mut base, total_cpu, mean_frac, peak_frac, 0.50, 0.90);

    let rps_per_memcached = 2_000.0;
    let epochs_spec = counts
        .iter()
        .map(|&count| {
            let memcached = base.containers[..count]
                .iter()
                .filter(|c| c.app.starts_with("memcached"))
                .count();
            EpochSpec {
                load_factor: 1.0,
                container_count: count,
                rps: rps_per_memcached * memcached as f64,
            }
        })
        .collect();

    let mults = correlated_loads(base.len(), epochs, 0.7, seed ^ 0xA2u64);
    // Re-center the multipliers on 1.0 with ±20 % amplitude.
    let mults = mults
        .into_iter()
        .map(|mut t| {
            for v in &mut t.values {
                *v = 1.0 + (*v - 1.0) * (0.2 / 0.3);
            }
            t
        })
        .collect();

    Scenario {
        name: "fig10-azure-mix".into(),
        tree,
        base,
        epochs: epochs_spec,
        epoch_seconds: 60.0,
        power: PowerConfig::testbed(),
        latency: LatencyModel::default(),
        migration: MigrationModel::default(),
        per_container_load: Some(mults),
        per_container_stream: None,
        tct_app_prefix: Some("memcached".into()),
        // Azure tenants over-reserve: Resource Central reports large gaps
        // between reserved and used cores, the premise of its bucket sizing.
        reservation_factor: 1.5,
    }
}

/// The Fig. 13 experiment: the large-scale flow-level simulation on a k-ary
/// fat tree driven by the Microsoft-search-like trace. The paper's full
/// configuration is `largescale(28, 88, seed)`: 5488 servers, 980 switches,
/// 49 392 containers over 88 one-hour epochs, E-PVM utilization 26–40 %.
/// Use a smaller even `k` (e.g. 8 or 12) for quick runs.
pub fn largescale(k: usize, epochs: usize, seed: u64) -> Scenario {
    // R940-class: 48 cores, large memory (search nodes hold 12 GB each and
    // nine share a server; CPU, not memory, must bind as in the paper).
    let server = Resources::new(4800.0, 768.0, 10_000.0);
    let tree = builders::fat_tree(k, server, 10_000.0);
    let containers = tree.server_count() * 9; // 49392 at k = 28
    let mut base = search_trace(&SearchTraceConfig {
        vertices: containers,
        seed,
        ..SearchTraceConfig::default()
    });

    // Diurnal load over the window, 55–100 % of peak.
    let shape = wikipedia_rps(epochs, 0.55, 1.0);
    let mean_frac = shape.values.iter().sum::<f64>() / shape.values.len() as f64;
    let total_cpu = tree.server_count() as f64 * server.cpu;
    calibrate_cpu(&mut base, total_cpu, mean_frac, 1.0, 0.28, 0.60);

    let isns = base
        .containers
        .iter()
        .filter(|c| c.app == "search-isn")
        .count() as f64;
    let epochs_spec = shape
        .values
        .iter()
        .map(|&f| EpochSpec {
            load_factor: f,
            container_count: containers,
            rps: 60.0 * isns * f,
        })
        .collect();

    Scenario {
        name: format!("fig13-largescale-k{k}"),
        tree,
        base,
        epochs: epochs_spec,
        epoch_seconds: 3600.0,
        power: PowerConfig::simulation(),
        latency: LatencyModel::default(),
        migration: MigrationModel::default(),
        per_container_load: None,
        per_container_stream: None,
        tct_app_prefix: Some("search".into()),
        reservation_factor: 1.3,
    }
}

/// The pinned hyperscale scenario: [`largescale`] an order of magnitude past
/// the paper (`hyperscale(48, epochs, seed)` = k=48 fat tree, 27 648 servers,
/// 248 832 containers) with *streamed* per-container correlated bursts in
/// place of a materialized trace table — the `vms × epochs` multiplier
/// matrix would be the dominant allocation at this scale, and the
/// counter-mode stream generates any epoch column on demand in O(1) memory.
///
/// The burst amplitude (±12 %) is sized so the diurnal peak (60 % calibrated
/// utilization) stays under the Goldilocks 70 % PEE cap: hyperscale epochs
/// exercise the warm path, not the fallback ladder.
pub fn hyperscale(k: usize, epochs: usize, seed: u64) -> Scenario {
    let mut s = largescale(k, epochs, seed);
    s.name = format!("hyperscale-k{k}");
    s.per_container_stream = Some(CorrelatedLoadStream::new(
        s.base.len(),
        0.7,
        0.12,
        seed ^ 0xB16_5CA1E,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::epoch_workload;

    #[test]
    fn wiki_calibration_hits_baseline_utilization() {
        let s = wiki_testbed(30, 176, 1);
        // Average demand ≈ 32 % of cluster CPU (or slightly below if the
        // peak clamp bound).
        let total_cpu = 16.0 * 3200.0;
        let mut utils = Vec::new();
        for e in 0..s.epochs.len() {
            let w = epoch_workload(&s, e);
            utils.push(w.total_demand().cpu / total_cpu);
        }
        let avg = utils.iter().sum::<f64>() / utils.len() as f64;
        assert!((0.22..=0.36).contains(&avg), "avg util {avg}");
        let peak = utils.iter().copied().fold(0.0, f64::max);
        assert!(peak <= 0.67, "peak util {peak}");
    }

    #[test]
    fn wiki_rps_matches_paper_range() {
        let s = wiki_testbed(60, 176, 2);
        let max = s.epochs.iter().map(|e| e.rps).fold(0.0, f64::max);
        let min = s.epochs.iter().map(|e| e.rps).fold(f64::INFINITY, f64::min);
        assert!(max <= 440_000.0 + 1.0 && min >= 44_000.0 - 1.0);
    }

    #[test]
    fn azure_counts_in_range() {
        let s = azure_testbed_sized(20, 60, 90, 3);
        for e in &s.epochs {
            assert!((60..=90).contains(&e.container_count));
        }
        assert!(s.per_container_load.is_some());
        // RPS follows the memcached population.
        assert!(s.epochs.iter().all(|e| e.rps > 0.0));
    }

    #[test]
    fn azure_memory_fits_testbed() {
        let s = azure_testbed_sized(10, 60, 90, 4);
        let w = s.base.prefix(90);
        let mem = w.total_demand().memory_gb;
        assert!(
            mem <= 16.0 * 64.0 * 0.9,
            "azure mix memory {mem} GB exceeds the testbed"
        );
    }

    #[test]
    fn largescale_matches_paper_at_28() {
        // Only verify the arithmetic (building the full 49392-container
        // trace takes seconds; done once here).
        let s = largescale(8, 4, 5);
        assert_eq!(s.tree.server_count(), 128);
        assert_eq!(s.base.len(), 128 * 9);
        assert_eq!(s.epochs.len(), 4);
        assert!((s.epoch_seconds - 3600.0).abs() < 1e-9);
    }

    #[test]
    fn reservation_factors_differ_by_scenario() {
        // Wiki reserves at nominal (demand == peak); Azure tenants
        // over-reserve CPU; the large-scale trace sits in between.
        assert_eq!(wiki_testbed(4, 40, 1).reservation_factor, 1.0);
        assert!(azure_testbed_sized(4, 30, 40, 1).reservation_factor > 1.0);
        assert!(largescale(6, 2, 1).reservation_factor > 1.0);
    }

    #[test]
    fn azure_network_fits_the_testbed() {
        let s = azure_testbed_sized(10, 60, 90, 4);
        let w = s.base.prefix(90);
        let net = w.total_demand().network_mbps;
        assert!(
            net <= 16.0 * 1000.0 * 0.9,
            "azure mix network {net} Mbps exceeds the 1 GbE testbed"
        );
    }

    #[test]
    fn largescale_utilization_feasible_for_goldilocks() {
        let s = largescale(8, 6, 6);
        let total_cpu = s.tree.server_count() as f64 * 4800.0;
        for e in 0..s.epochs.len() {
            let w = epoch_workload(&s, e);
            let u = w.total_demand().cpu / total_cpu;
            assert!(u <= 0.62, "epoch {e} util {u}");
        }
    }

    #[test]
    fn hyperscale_streams_instead_of_materializing() {
        let s = hyperscale(8, 6, 6);
        assert!(s.per_container_load.is_none());
        let stream = s.per_container_stream.as_ref().expect("stream");
        assert_eq!(stream.vms, s.base.len());
        assert_eq!(s.name, "hyperscale-k8");
        // Same topology arithmetic as largescale at the same k.
        assert_eq!(s.tree.server_count(), 128);
        assert_eq!(s.base.len(), 128 * 9);
    }

    #[test]
    fn hyperscale_peak_stays_under_pee_cap() {
        // Diurnal peak (calibrated to 60 %) times the +12 % burst ceiling
        // must stay below the 70 % Goldilocks PEE target: hyperscale runs
        // exercise the warm path, not the fallback ladder.
        let s = hyperscale(8, 8, 3);
        let total_cpu = s.tree.server_count() as f64 * 4800.0;
        for e in 0..s.epochs.len() {
            let w = epoch_workload(&s, e);
            let u = w.total_demand().cpu / total_cpu;
            assert!(u < 0.70, "epoch {e} util {u} would trip the PEE cap");
        }
    }
}
