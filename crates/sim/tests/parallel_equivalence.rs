//! Equivalence harness for the parallel lineup engine: for every scenario
//! family, several seeds, and a spread of thread counts, the parallel
//! engine's reports and placements must be **byte-identical** to the
//! `threads = 1` reference path. Any divergence is a determinism bug, so
//! these tests compare serialized output (`runs_to_csv`) and full
//! `Placement` values — not summaries or tolerances.

use goldilocks_core::{Goldilocks, GoldilocksConfig};
use goldilocks_placement::Placer;
use goldilocks_sim::epoch::{epoch_workload, run_lineup_with, run_policies_with, Policy, Scenario};
use goldilocks_sim::report::runs_to_csv;
use goldilocks_sim::scenarios::{azure_testbed, largescale, wiki_testbed};
use goldilocks_sim::ParallelConfig;

/// Thread counts exercised against the sequential reference. 2 forks one
/// level, 4 forks two, 8 forks three (deeper than the lineup is wide, so
/// the leftover budget reaches the partitioner).
const THREADS: &[usize] = &[2, 4, 8];

/// A parallel config that actually forks on testbed-sized graphs: the
/// default `min_parallel_vertices` (512) would gate every fork off at
/// test scale and the comparison would be vacuous.
fn forking(threads: usize) -> ParallelConfig {
    ParallelConfig {
        min_parallel_vertices: 2,
        ..ParallelConfig::with_threads(threads)
    }
}

/// `forking` with metering sharding also forced on at test scale: tiny
/// chunks so every epoch spans many chunks, and no spawn gate. The chunk
/// size is the *association* knob, so the sequential reference must use the
/// same one — byte-identity across thread counts is only claimed per chunk
/// size (see the metering module's determinism contract).
fn metering_sharded(threads: usize) -> ParallelConfig {
    ParallelConfig {
        metering_chunk_flows: 8,
        min_parallel_flows: 1,
        ..forking(threads)
    }
}

fn scenarios(seed: u64) -> Vec<Scenario> {
    vec![
        wiki_testbed(5, 60, seed),
        azure_testbed(5, seed),
        largescale(4, 5, seed),
    ]
}

#[test]
fn lineup_reports_are_byte_identical_across_thread_counts() {
    for seed in [7, 42, 1234] {
        for scenario in scenarios(seed) {
            let reference = run_lineup_with(&scenario, &ParallelConfig::sequential())
                .expect("sequential lineup is feasible");
            let reference_csv = runs_to_csv(&reference);
            for &threads in THREADS {
                let runs = run_lineup_with(&scenario, &forking(threads))
                    .expect("parallel lineup is feasible");
                assert_eq!(
                    runs_to_csv(&runs),
                    reference_csv,
                    "lineup diverged on {} (seed {seed}, {threads} threads)",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn sharded_metering_lineups_are_byte_identical_across_thread_counts() {
    // Same wall as above, but with the metering engine genuinely sharding
    // (chunk 8, no spawn gate) on top of partitioner forking. The reference
    // runs the *same* chunk size at one thread: the combine order is fixed
    // by the chunk size, so thread count must never move a bit in any
    // reported field (TCT means included).
    for seed in [7, 42, 1234] {
        for scenario in scenarios(seed) {
            let reference = run_lineup_with(&scenario, &metering_sharded(1))
                .expect("sequential sharded lineup is feasible");
            let reference_csv = runs_to_csv(&reference);
            for &threads in THREADS {
                let runs = run_lineup_with(&scenario, &metering_sharded(threads))
                    .expect("parallel sharded lineup is feasible");
                assert_eq!(
                    runs_to_csv(&runs),
                    reference_csv,
                    "sharded metering diverged on {} (seed {seed}, {threads} threads)",
                    scenario.name
                );
            }
        }
    }
}

#[test]
fn default_chunk_matches_legacy_on_testbed_scale() {
    // The default chunk (4096 flows) means every testbed-scale epoch is a
    // single chunk, and a single chunk reproduces the legacy flow-order
    // association exactly — so the default parallel config must stay
    // byte-identical to the fully sequential path even with sharding
    // enabled by thread budget alone.
    let scenario = azure_testbed(4, 7);
    let legacy = run_lineup_with(&scenario, &ParallelConfig::sequential()).expect("feasible");
    for &threads in THREADS {
        let runs = run_lineup_with(&scenario, &forking(threads)).expect("feasible");
        assert_eq!(runs_to_csv(&runs), runs_to_csv(&legacy));
    }
}

#[test]
fn policy_subsets_preserve_caller_order_and_results() {
    let scenario = wiki_testbed(4, 50, 42);
    // A deliberately shuffled subset: join order must follow the caller's
    // order, not completion order.
    let subset = [
        Policy::Goldilocks(GoldilocksConfig::paper()),
        Policy::EPvm,
        Policy::Borg,
    ];
    let reference = run_policies_with(&scenario, &subset, &ParallelConfig::sequential())
        .expect("sequential subset is feasible");
    for &threads in THREADS {
        let runs = run_policies_with(&scenario, &subset, &forking(threads))
            .expect("parallel subset is feasible");
        let names: Vec<&str> = runs.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(
            names,
            vec!["Goldilocks", "E-PVM", "Borg"],
            "join order must match the caller's policy order"
        );
        assert_eq!(runs_to_csv(&runs), runs_to_csv(&reference));
    }
}

#[test]
fn goldilocks_placements_are_identical_across_thread_counts() {
    for seed in [7, 42] {
        for scenario in scenarios(seed) {
            for epoch in [0, scenario.epochs.len() - 1] {
                let w = epoch_workload(&scenario, epoch);
                let mut cfg = GoldilocksConfig::paper();
                cfg.bisect.parallel = ParallelConfig::sequential();
                let reference = Goldilocks::with_config(cfg)
                    .place(&w, &scenario.tree)
                    .expect("sequential placement is feasible");
                for &threads in THREADS {
                    let mut cfg = GoldilocksConfig::paper();
                    cfg.bisect.parallel = forking(threads);
                    let placement = Goldilocks::with_config(cfg)
                        .place(&w, &scenario.tree)
                        .expect("parallel placement is feasible");
                    assert_eq!(
                        placement, reference,
                        "placement diverged on {} epoch {epoch} (seed {seed}, {threads} threads)",
                        scenario.name
                    );
                }
            }
        }
    }
}

#[test]
fn threads_one_with_low_threshold_is_the_exact_legacy_path() {
    // threads = 1 must never fork regardless of the threshold — it is the
    // reference semantics, not just "parallelism that happens to be narrow".
    let scenario = azure_testbed(4, 7);
    let legacy = run_lineup_with(&scenario, &ParallelConfig::sequential()).expect("feasible");
    let pinned = run_lineup_with(
        &scenario,
        &ParallelConfig {
            min_parallel_vertices: 0,
            ..ParallelConfig::with_threads(1)
        },
    )
    .expect("feasible");
    assert_eq!(runs_to_csv(&pinned), runs_to_csv(&legacy));
}
