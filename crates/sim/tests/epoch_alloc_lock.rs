//! Allocation-regression lock for the warm epoch loop.
//!
//! A counting global allocator (same pattern as
//! `partition/tests/alloc_lock.rs`) measures the steady-state epoch path:
//! once the arena and the container-graph cache are warm, materializing an
//! epoch's workload (`epoch_workload_into`) and rebuilding its container
//! graph (`ContainerGraphCache::build`, weight-refresh path) must perform
//! ZERO heap allocations — the whole point of the arena/SoA refactor. Any
//! per-epoch scratch allocation creeping back into these paths trips the
//! lock exactly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use goldilocks_sim::epoch_workload_into;
use goldilocks_sim::scenarios::{hyperscale, wiki_testbed};
use goldilocks_workload::{ContainerGraphCache, WorkloadArena};

/// Counts allocation events (alloc + realloc); delegates to the system
/// allocator.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_epoch_path_is_allocation_free() {
    // Constant container count + load-only variation = the steady state the
    // warm path is built for. Wiki uses no per-container shaping; the
    // hyperscale scenario adds the counter-mode stream (which must also be
    // allocation-free by construction).
    let scenarios = vec![wiki_testbed(8, 64, 1), hyperscale(4, 8, 2)];
    for scenario in &scenarios {
        let mut arena = WorkloadArena::new();
        let mut cache = ContainerGraphCache::new();

        // Warm: first epoch allocates the arena tables and the full graph
        // build; the second proves out the refill/refresh paths' buffers.
        for e in 0..2 {
            let w = epoch_workload_into(scenario, e, &mut arena);
            cache.build(w, 1000).expect("graph build");
        }

        let before = alloc_count();
        for e in 2..scenario.epochs.len() {
            let w = epoch_workload_into(scenario, e, &mut arena);
            cache.build(w, 1000).expect("graph build");
        }
        let warm_allocs = alloc_count() - before;

        assert_eq!(
            warm_allocs, 0,
            "{}: warm epochs allocated {warm_allocs} times; the arena refill \
             or the graph-cache refresh path regressed",
            scenario.name
        );
        let stats = cache.stats();
        assert_eq!(stats.full_rebuilds, 1, "{}", scenario.name);
        assert_eq!(
            stats.weight_refreshes as usize,
            scenario.epochs.len() - 1,
            "{}: every warm epoch must take the weight-refresh path",
            scenario.name
        );
    }
}

#[test]
fn warm_arena_beats_allocating_path() {
    let scenario = wiki_testbed(6, 64, 3);
    let mut arena = WorkloadArena::new();
    for e in 0..2 {
        epoch_workload_into(&scenario, e, &mut arena);
    }

    let before = alloc_count();
    epoch_workload_into(&scenario, 3, &mut arena);
    let warm = alloc_count() - before;

    let before = alloc_count();
    let fresh_w = goldilocks_sim::epoch_workload(&scenario, 3);
    let fresh = alloc_count() - before;

    assert_eq!(warm, 0, "warm arena refill must not allocate");
    assert!(
        fresh > 0,
        "sanity: the allocating path allocates (got {fresh})"
    );
    drop(fresh_w);
}
