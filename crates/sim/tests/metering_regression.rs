//! Regression locks for the latency-metering and migration-costing path.
//!
//! Every value here is computed closed-form from hand-built workloads and
//! placements — **no RNG anywhere** — so the expected numbers are identical
//! under the offline stub `rand` and the real crates.io `rand`, and any
//! drift in the TCT or migration columns is a real model change, not noise.
//! Tolerances are 1e-9: these are exact-arithmetic locks, not statistical
//! checks.

use goldilocks_cluster::{migration_plan, MigrationModel};
use goldilocks_placement::Placement;
use goldilocks_sim::epoch::{run_policy, EpochSpec, Policy, Scenario};
use goldilocks_sim::metering::single_chunk_reference;
use goldilocks_sim::{
    flow_tcts_ms, flow_tcts_ms_sharded, link_loads, mean_tct_ms, mean_tct_ms_sharded,
    tct_percentile_ms, LatencyModel, MeteringWorkspace, ParallelConfig, PowerConfig,
};
use goldilocks_topology::builders::fat_tree;
use goldilocks_topology::{DcTree, Resources};
use goldilocks_workload::{ContainerId, Workload};

const EPS: f64 = 1e-9;

fn tree16() -> DcTree {
    fat_tree(4, Resources::new(400.0, 64.0, 1000.0), 1000.0)
}

fn two_flow_workload() -> Workload {
    let mut w = Workload::new();
    for _ in 0..4 {
        w.add_container("app", Resources::new(50.0, 4.0, 100.0), None);
    }
    w.add_flow(ContainerId(0), ContainerId(1), 10, 100.0);
    w.add_flow(ContainerId(2), ContainerId(3), 30, 100.0);
    w
}

#[test]
fn mean_tct_locks_same_rack_value() {
    let tree = tree16();
    let w = two_flow_workload();
    let order = tree.servers_in_dfs_order();
    // Both flows between the first two servers of one rack: each path
    // crosses exactly the two server NIC uplinks.
    let p = Placement {
        assignment: vec![
            Some(order[0]),
            Some(order[1]),
            Some(order[0]),
            Some(order[1]),
        ],
    };
    let utils = vec![0.4; tree.server_count()];
    let m = LatencyModel::default();
    let tct = mean_tct_ms(&m, &w, &p, &tree, &utils, |_| true);
    // Service: 0.20 / (1 - 0.4). Each NIC uplink carries both flows
    // (200 Mbps of 1000), so each of the 2 hops costs 0.50 / (1 - 0.2).
    // Both flows see the identical path, so the flow-count weights
    // (10 vs 30) cancel.
    let expected = 0.20 / 0.6 + 2.0 * (0.50 / 0.8);
    assert!((tct - expected).abs() < EPS, "tct {tct} != {expected}");
}

#[test]
fn mean_tct_locks_cross_pod_value_with_shared_links() {
    let tree = tree16();
    let w = two_flow_workload();
    let order = tree.servers_in_dfs_order();
    // Flow 0: same rack (2 hops). Flow 1: cross-pod (6 hops), sharing no
    // uplink with flow 0 except nothing — distinct servers throughout.
    let p = Placement {
        assignment: vec![
            Some(order[0]),
            Some(order[1]),
            Some(order[2]),
            Some(order[15]),
        ],
    };
    assert_eq!(tree.hop_distance(order[2], order[15]), 6);
    let utils = vec![0.5; tree.server_count()];
    let m = LatencyModel::default();

    // Every crossed uplink carries exactly one 100 Mbps flow. The 6-hop
    // cross-pod path crosses both endpoint chains below the core: two NIC
    // uplinks (1000 Mbps), two rack uplinks (k/2 × NIC = 2000 Mbps), two
    // pod uplinks (k²/4 × NIC = 4000 Mbps).
    let service = 0.20 / 0.5;
    let nic_hop = 0.50 / (1.0 - 100.0 / 1000.0);
    let rack_hop = 0.50 / (1.0 - 100.0 / 2000.0);
    let pod_hop = 0.50 / (1.0 - 100.0 / 4000.0);
    let t_near = service + 2.0 * nic_hop;
    let t_far = service + 2.0 * nic_hop + 2.0 * rack_hop + 2.0 * pod_hop;
    // Weighted by flow counts 10 and 30.
    let expected = (t_near * 10.0 + t_far * 30.0) / 40.0;
    let tct = mean_tct_ms(&m, &w, &p, &tree, &utils, |_| true);
    assert!((tct - expected).abs() < EPS, "tct {tct} != {expected}");

    // The per-flow samples and the weighted percentiles lock too.
    let samples = flow_tcts_ms(&m, &w, &p, &tree, &utils, |_| true);
    assert_eq!(samples.len(), 2);
    assert!((samples[0].0 - t_near).abs() < EPS);
    assert!((samples[1].0 - t_far).abs() < EPS);
    // 10 of 40 weight is the near flow: the median and the p99 both sit on
    // the far flow, p25 exactly on the near one.
    assert!((tct_percentile_ms(&samples, 0.25) - t_near).abs() < EPS);
    assert!((tct_percentile_ms(&samples, 0.50) - t_far).abs() < EPS);
    assert!((tct_percentile_ms(&samples, 0.99) - t_far).abs() < EPS);
}

#[test]
fn link_loads_lock_shared_uplink_aggregation() {
    let tree = tree16();
    let w = two_flow_workload();
    let order = tree.servers_in_dfs_order();
    // Both flows originate on server 0 toward the far pod: its NIC uplink
    // must carry exactly the 200 Mbps sum.
    let p = Placement {
        assignment: vec![
            Some(order[0]),
            Some(order[15]),
            Some(order[0]),
            Some(order[15]),
        ],
    };
    let loads = link_loads(&w, &p, &tree);
    let nic = tree.server(order[0]).node;
    assert!((loads[&nic] - 200.0).abs() < EPS);
    let rack = tree.node(nic).parent.expect("rack uplink");
    assert!((loads[&rack] - 200.0).abs() < EPS);
}

#[test]
fn single_chunk_engine_is_bitwise_identical_to_legacy() {
    // `latency::mean_tct_ms` / `flow_tcts_ms` now delegate to the sharded
    // engine as a single chunk; this lock pins the other direction — an
    // explicitly single-chunk engine run reproduces the legacy flow-order
    // association bit-for-bit (a chunk partial starts at 0.0 and
    // `0.0 + x == x`, so one chunk *is* the flow order).
    let tree = tree16();
    let w = two_flow_workload();
    let order = tree.servers_in_dfs_order();
    let p = Placement {
        assignment: vec![
            Some(order[0]),
            Some(order[1]),
            Some(order[2]),
            Some(order[15]),
        ],
    };
    let utils = vec![0.5; tree.server_count()];
    let m = LatencyModel::default();
    let legacy_mean = mean_tct_ms(&m, &w, &p, &tree, &utils, |_| true);
    let legacy_samples = flow_tcts_ms(&m, &w, &p, &tree, &utils, |_| true);

    let cfg = single_chunk_reference();
    let mut ws = MeteringWorkspace::new();
    let mean = mean_tct_ms_sharded(&m, &w, &p, &tree, &utils, |_| true, &cfg, &mut ws);
    let samples = flow_tcts_ms_sharded(&m, &w, &p, &tree, &utils, |_| true, &cfg, &mut ws);
    assert_eq!(mean.to_bits(), legacy_mean.to_bits());
    assert_eq!(samples.len(), legacy_samples.len());
    for (s, l) in samples.iter().zip(&legacy_samples) {
        assert_eq!(s.0.to_bits(), l.0.to_bits());
        assert_eq!(s.1.to_bits(), l.1.to_bits());
    }
}

#[test]
fn fixed_chunk_association_order_locks_closed_form() {
    // The sharded mean is *defined* by a two-level association order, both
    // levels functions of the chunk size alone:
    //
    //   1. within chunk `k`, flows accumulate in flow order:
    //      `p_k = ((0.0 + t_i·w_i) + t_{i+1}·w_{i+1}) + …`
    //   2. chunks combine in ascending chunk index:
    //      `total = ((0.0 + p_0) + p_1) + p_2 …`
    //
    // This test re-derives the mean closed-form through exactly that
    // reduction — same ops, same order — on five disjoint same-rack flows
    // with decimal (non-representable) rates, and requires bit equality at
    // every thread count. If the engine's combine order ever changes, the
    // ulp-level difference trips `to_bits` even though a tolerance check
    // would pass.
    let tree = tree16();
    let order = tree.servers_in_dfs_order();
    let mut w = Workload::new();
    for _ in 0..10 {
        w.add_container("app", Resources::new(10.0, 1.0, 10.0), None);
    }
    // Flow i joins containers (2i, 2i+1) on servers (order[2i], order[2i+1])
    // — one rack each (rack size k/2 = 2), so the five paths are disjoint:
    // each crosses exactly its two NIC uplinks carrying only its own rate.
    // Rates are decimal fractions with no exact binary representation; the
    // last flow has `flow_count = 0` (weighted as 1 via `max(1)`).
    let rates = [0.1, 30.3, 123.4, 250.7, 333.3];
    let counts = [1i64, 3, 7, 10, 0];
    for i in 0..5 {
        w.add_flow(
            ContainerId(2 * i),
            ContainerId(2 * i + 1),
            counts[i],
            rates[i],
        );
    }
    let p = Placement {
        assignment: (0..10).map(|c| Some(order[c])).collect(),
    };
    // Distinct endpoint utilizations so each flow's service time differs.
    let mut utils = vec![0.0; tree.server_count()];
    for (j, s) in order.iter().enumerate().take(10) {
        utils[s.0] = 0.05 * j as f64;
    }
    let m = LatencyModel::default();

    // Per-flow (service + net) · w terms, each closed-form: rho is the max
    // endpoint utilization, both hops are the flow's own NIC uplinks at
    // rate/1000 of capacity. `net` folds the two hops exactly as the engine
    // does (`net += hop` twice).
    let term = |i: usize| -> (f64, f64) {
        let rho = (0.05 * (2 * i) as f64)
            .max(0.05 * (2 * i + 1) as f64)
            .min(m.server_queue_cap);
        let service = m.base_service_ms / (1.0 - rho);
        let hop = m.per_hop_ms / (1.0 - (rates[i] / 1000.0).min(m.link_queue_cap));
        let mut net = 0.0;
        net += hop;
        net += hop;
        let wt = counts[i].max(1) as f64;
        ((service + net) * wt, wt)
    };
    // Chunk size 2 → chunks {0,1}, {2,3}, {4}: flow-order partials…
    let chunk_partial = |flows: &[usize]| -> (f64, f64) {
        let mut pw = 0.0;
        let mut pn = 0.0;
        for &i in flows {
            let (tw, wt) = term(i);
            pw += tw;
            pn += wt;
        }
        (pw, pn)
    };
    let (p0w, p0n) = chunk_partial(&[0, 1]);
    let (p1w, p1n) = chunk_partial(&[2, 3]);
    let (p2w, p2n) = chunk_partial(&[4]);
    // …combined in ascending chunk order.
    let mut weighted = 0.0;
    let mut weight = 0.0;
    for (pw, pn) in [(p0w, p0n), (p1w, p1n), (p2w, p2n)] {
        weighted += pw;
        weight += pn;
    }
    let expected = weighted / weight;

    for threads in [1usize, 2, 4, 8] {
        let cfg = ParallelConfig {
            metering_chunk_flows: 2,
            min_parallel_flows: 1,
            ..ParallelConfig::with_threads(threads)
        };
        let mut ws = MeteringWorkspace::new();
        let mean = mean_tct_ms_sharded(&m, &w, &p, &tree, &utils, |_| true, &cfg, &mut ws);
        assert_eq!(
            mean.to_bits(),
            expected.to_bits(),
            "chunk-2 association order drifted at {threads} threads: {mean} vs {expected}"
        );
    }
}

#[test]
fn migration_single_cost_locks_testbed_pipeline() {
    // Default testbed pipeline: 400 MB/s SSD dump/restore, 110 MB/s 1 GbE,
    // 0.8 s restore overhead, 10 % volume delta. For a 4 GB container with
    // a 2 GB volume:
    //   dump    = 4096 / 400
    //   transfer = (4096 + 2048 × 0.10) / 110
    //   restore = 4096 / 400 + 0.8
    let m = MigrationModel::default();
    let (freeze, transfer_mb) = m.single_cost(4.0, 2.0);
    let expected_transfer_mb = 4096.0 + 204.8;
    let expected_freeze = 4096.0 / 400.0 + expected_transfer_mb / 110.0 + 4096.0 / 400.0 + 0.8;
    assert!((transfer_mb - expected_transfer_mb).abs() < EPS);
    assert!((freeze - expected_freeze).abs() < EPS, "freeze {freeze}");
}

#[test]
fn migration_plan_cost_locks_columns() {
    use goldilocks_topology::ServerId;
    let mut w = Workload::new();
    w.add_container("a", Resources::new(50.0, 2.0, 10.0), None);
    w.add_container("b", Resources::new(50.0, 4.0, 10.0), None);
    w.add_container("c", Resources::new(50.0, 8.0, 10.0), None);
    let old = Placement {
        assignment: vec![Some(ServerId(0)), Some(ServerId(1)), Some(ServerId(2))],
    };
    let new = Placement {
        assignment: vec![Some(ServerId(0)), Some(ServerId(5)), Some(ServerId(6))],
    };
    let plan = migration_plan(&old, &new);
    assert_eq!(plan.len(), 2, "containers 1 and 2 moved");
    let m = MigrationModel::default();
    let cost = m.plan_cost(&plan, &w);
    assert_eq!(cost.count, 2);
    // plan_cost assumes volume = memory / 2, so each move is
    // single_cost(mem, mem / 2).
    let (f1, t1) = m.single_cost(4.0, 2.0);
    let (f2, t2) = m.single_cost(8.0, 4.0);
    assert!((cost.total_freeze_s - (f1 + f2)).abs() < EPS);
    assert!((cost.total_transfer_mb - (t1 + t2)).abs() < EPS);
}

/// A hand-built two-epoch scenario on the RNG-free E-PVM policy: the whole
/// metering path (power sample, TCT column, migration/freeze columns) is a
/// pure function of this fixture, so the driver's output columns must be
/// bit-stable across releases and across `rand` implementations.
fn fixed_scenario() -> Scenario {
    let tree = tree16();
    let mut base = Workload::new();
    for i in 0..8 {
        base.add_container(
            if i % 2 == 0 { "web" } else { "db" },
            Resources::new(80.0 + 10.0 * i as f64, 4.0, 50.0),
            None,
        );
    }
    for i in 0..4 {
        base.add_flow(ContainerId(2 * i), ContainerId(2 * i + 1), 5, 40.0);
    }
    Scenario {
        name: "metering-regression-fixture".into(),
        tree,
        base,
        epochs: vec![
            EpochSpec {
                load_factor: 1.0,
                container_count: 6,
                rps: 1000.0,
            },
            EpochSpec {
                load_factor: 0.5,
                container_count: 8,
                rps: 1000.0,
            },
        ],
        epoch_seconds: 60.0,
        power: PowerConfig::testbed(),
        latency: LatencyModel::default(),
        migration: MigrationModel::default(),
        per_container_load: None,
        per_container_stream: None,
        tct_app_prefix: None,
        reservation_factor: 1.0,
    }
}

#[test]
fn epoch_driver_locks_tct_and_migration_columns() {
    let run = run_policy(&fixed_scenario(), &Policy::EPvm).expect("fixture is feasible");
    assert_eq!(run.records.len(), 2);
    let (r0, r1) = (&run.records[0], &run.records[1]);

    // Epoch 0 has no predecessor: migration columns must be exactly zero.
    assert_eq!(r0.migrations, 0);
    assert_eq!(r0.freeze_seconds, 0.0);

    // Lock the concrete TCT column values so a silent change on either side
    // (driver wiring or latency model) trips the diff. The constants are
    // the model's exact output on this fixture, reproducible by hand from
    // the E-PVM spread (6 resp. 8 least-utilized servers) and the TCT
    // formula locked by the closed-form tests above.
    assert!(
        (r0.tct_ms - 1.318_407_627_130_281_8).abs() < EPS,
        "epoch 0 TCT drifted: {}",
        r0.tct_ms
    );
    assert!(
        (r1.tct_ms - 1.255_957_160_002_848_7).abs() < EPS,
        "epoch 1 TCT drifted: {}",
        r1.tct_ms
    );
    assert_eq!(r1.migrations, 0, "E-PVM spread is stable across epochs");
    assert_eq!(r1.freeze_seconds, 0.0);
}

/// A hand-scripted daemon run — fixed requests, no RNG — locking the
/// serving-path shed/backpressure counters closed-form: every number below
/// is derivable by hand from the queue capacity and the priority ordering.
#[test]
fn service_soak_locks_shed_and_backpressure_columns() {
    use goldilocks_core::ServiceConfig;
    use goldilocks_service::{PlacementDaemon, Request};
    use goldilocks_topology::builders::single_rack;

    let tree = single_rack(4, Resources::new(100.0, 16.0, 1000.0), 1000.0);
    let cfg = ServiceConfig {
        queue_capacity: 4,
        bucket_capacity: 16,
        tokens_per_epoch: 16,
        batch_max: 8,
        ..ServiceConfig::default()
    };
    let mut d = PlacementDaemon::new(cfg, tree);
    let demand = Resources::new(10.0, 1.0, 10.0);
    // Priorities 1..=4 fill the queue; 5 and 6 evict the two lowest
    // (explicit sheds); a trailing 1 cannot outrank anyone (reject).
    for (i, priority) in [1u8, 2, 3, 4, 5, 6, 1].iter().enumerate() {
        d.submit(
            i as u64,
            Request::Admit {
                priority: *priority,
                demand,
                deadline_ticks: 0,
                tag: i as u64,
            },
        );
    }
    let rec = d.commit_epoch(0).expect("quiet journal");

    assert_eq!(rec.arrivals, 7);
    assert_eq!(rec.accepted, 6);
    assert_eq!(rec.shed_queue, 2, "priorities 1 and 2 evicted");
    assert_eq!(rec.rejected_queue, 1, "trailing low-priority admit");
    assert_eq!(rec.rejected_throttle, 0);
    assert_eq!(rec.rejected_wal, 0);
    assert_eq!(rec.queue_depth_max, 4, "bounded by capacity");
    assert_eq!(rec.placed, 4);
    assert_eq!(rec.live, 4);
    assert_eq!(rec.fallback, 0, "four tiny tenants need no degradation");
    assert!(!rec.stalled);
}

/// Locks the service soak CSV contract: the exact header string, the
/// column count, and the formatting of one hand-built row. Renaming or
/// reordering a column must trip this test.
#[test]
fn service_soak_csv_locks_header_and_row_format() {
    use goldilocks_service::ServiceEpochRecord;
    use goldilocks_sim::chaos::ServiceSoakRun;
    use goldilocks_sim::report::{service_soak_to_csv, SERVICE_SOAK_CSV_HEADER};

    assert_eq!(
        SERVICE_SOAK_CSV_HEADER,
        "epoch,arrivals,accepted,rejected_throttle,rejected_queue,rejected_wal,\
         shed_queue,shed_planner,expired,placed,resized,removed,not_found,live,\
         queue_depth_max,queue_depth_end,outbox_dropped,fallback,wal_bytes,stalled"
    );
    assert_eq!(SERVICE_SOAK_CSV_HEADER.split(',').count(), 20);

    let rec = ServiceEpochRecord {
        epoch: 3,
        arrivals: 20,
        accepted: 12,
        rejected_throttle: 1,
        rejected_queue: 5,
        rejected_wal: 2,
        shed_queue: 4,
        shed_planner: 1,
        expired: 1,
        placed: 6,
        resized: 2,
        removed: 1,
        not_found: 1,
        live: 9,
        queue_depth_max: 8,
        queue_depth_end: 0,
        outbox_dropped: 0,
        fallback: 4,
        wal_bytes: 1234,
        stalled: true,
    };
    let run = ServiceSoakRun {
        records: vec![rec],
        crashes: 0,
        forced_recoveries: 0,
        stalled_epochs: 1,
        outcomes_drained: 0,
        final_wal: Vec::new(),
        replay_consistent: true,
    };
    let csv = service_soak_to_csv(&run);
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[0], SERVICE_SOAK_CSV_HEADER);
    assert_eq!(lines[1], "3,20,12,1,5,2,4,1,1,6,2,1,1,9,8,0,0,4,1234,1");
    assert_eq!(run.backpressure_totals(), (5, 8, 8));
}

#[test]
fn epoch_driver_locks_power_columns() {
    // The power columns are pure functions of the fixture too: E-PVM puts
    // one container per least-utilized server (6 active in epoch 0, all 8
    // in epoch 1) and the testbed power model yields these exact draws.
    let run = run_policy(&fixed_scenario(), &Policy::EPvm).expect("feasible");
    let (r0, r1) = (&run.records[0], &run.records[1]);
    assert_eq!(r0.active_servers, 6);
    assert_eq!(r1.active_servers, 8);
    assert!(
        (r0.server_watts - 1266.375).abs() < EPS,
        "{}",
        r0.server_watts
    );
    assert!(
        (r0.switch_watts - 2255.0).abs() < EPS,
        "{}",
        r0.switch_watts
    );
    assert!(
        (r1.server_watts - 1322.75).abs() < EPS,
        "{}",
        r1.server_watts
    );
    assert!(
        (r1.switch_watts - 2818.75).abs() < EPS,
        "{}",
        r1.switch_watts
    );
}
