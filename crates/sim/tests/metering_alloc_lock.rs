//! Allocation-regression lock for the sharded metering hot path.
//!
//! A counting global allocator measures heap allocations across one warm
//! `mean_tct_ms_sharded` call on a fixed fat-tree scenario. The
//! `MeteringWorkspace` owns every buffer the engine touches — the LCA chain
//! table, per-chunk endpoint/link/load scratch, and the dense combined
//! link-load array — and the sequential path neither spawns threads nor
//! builds temporaries, so a warm call is *exactly* zero-alloc. That is
//! locked strictly (== 0), not with a ceiling: any allocation that shows up
//! is scratch creeping back into the per-epoch loop.
//!
//! A second, bounded lock covers the composite per-epoch metering step
//! (utilizations + power + mean TCT) the way `meter_epoch` performs it; the
//! utilization vector and power sample are real outputs and may allocate,
//! but only a handful of times.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use goldilocks_placement::{EPvm, Placement, Placer};
use goldilocks_sim::scenarios::wiki_testbed;
use goldilocks_sim::{
    epoch_workload, mean_tct_ms_sharded, meter_with_utils, LatencyModel, MeteringWorkspace,
    ParallelConfig, PowerConfig, Scenario,
};
use goldilocks_workload::Workload;

/// One epoch-0 fixture: scenario, live workload and an E-PVM placement.
fn fixture() -> (Scenario, Workload, Placement) {
    let scenario = wiki_testbed(3, 60, 42);
    let w = epoch_workload(&scenario, 0);
    let placement = EPvm::new()
        .place(&w, &scenario.tree)
        .expect("testbed workload places");
    (scenario, w, placement)
}

/// Counts allocation events (alloc + realloc); delegates to the system
/// allocator.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn warm_sequential_metering_is_zero_alloc() {
    let (scenario, w, placement) = fixture();
    let utils = placement.server_cpu_utilizations(&w, &scenario.tree);
    let model = LatencyModel::default();
    let cfg = ParallelConfig::sequential();
    let mut ws = MeteringWorkspace::new();

    // Two warm-up calls grow every workspace buffer to its high-water mark.
    let cold = mean_tct_ms_sharded(
        &model,
        &w,
        &placement,
        &scenario.tree,
        &utils,
        |_| true,
        &cfg,
        &mut ws,
    );
    mean_tct_ms_sharded(
        &model,
        &w,
        &placement,
        &scenario.tree,
        &utils,
        |_| true,
        &cfg,
        &mut ws,
    );

    let before = alloc_count();
    let warm = mean_tct_ms_sharded(
        &model,
        &w,
        &placement,
        &scenario.tree,
        &utils,
        |_| true,
        &cfg,
        &mut ws,
    );
    let warm_allocs = alloc_count() - before;

    assert_eq!(
        cold.to_bits(),
        warm.to_bits(),
        "workspace reuse must not change the mean TCT"
    );
    assert_eq!(
        warm_allocs, 0,
        "warm sequential mean_tct_ms_sharded allocated {warm_allocs} times; \
         the metering hot path must be alloc-free on a warmed workspace"
    );
}

#[test]
fn warm_epoch_metering_step_allocation_lock() {
    let (scenario, w, placement) = fixture();
    let model = LatencyModel::default();
    let power = PowerConfig::testbed();
    let cfg = ParallelConfig::sequential();
    let mut ws = MeteringWorkspace::new();

    // The composite step as meter_epoch performs it, warmed twice.
    let step = |ws: &mut MeteringWorkspace| {
        let utils = placement.server_cpu_utilizations(&w, &scenario.tree);
        let sample = meter_with_utils(&placement, &scenario.tree, &power, &utils);
        let tct = mean_tct_ms_sharded(
            &model,
            &w,
            &placement,
            &scenario.tree,
            &utils,
            |_| true,
            &cfg,
            ws,
        );
        (sample, tct)
    };
    step(&mut ws);
    step(&mut ws);

    let before = alloc_count();
    step(&mut ws);
    let warm_allocs = alloc_count() - before;

    // The utilization vector is a real per-call output and the power meter
    // may build small temporaries; everything else is workspace-resident.
    // Observed a handful of allocations; the ceiling leaves slack for
    // allocator-shim differences while still catching any per-flow or
    // per-link scratch returning to the epoch loop.
    const CEILING: u64 = 100;
    assert!(
        warm_allocs <= CEILING,
        "warm epoch metering step allocated {warm_allocs} times (ceiling {CEILING})"
    );
}
