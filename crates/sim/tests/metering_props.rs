//! Property tests for the sharded metering engine's determinism contract.
//!
//! Two claims are proved bit-for-bit (`f64::to_bits`, never tolerances) on
//! random workloads, placements and trees — including unplaced endpoints,
//! zero-weight flows and same-server flows:
//!
//! 1. **Single chunk ≡ reference.** The engine run as one chunk reproduces
//!    an independently written naive oracle (a line-by-line transcription of
//!    the pre-engine `latency::mean_tct_ms` / `flow_tcts_ms` math: `BTreeMap`
//!    link loads, per-flow LCA climb, flow-order accumulation) exactly.
//! 2. **Thread invariance per chunk size.** For any fixed chunk size, runs
//!    at 2, 4 and 8 threads are byte-identical to the 1-thread run — the
//!    association order is a function of the chunk size alone, never of the
//!    thread count or the scheduler.
//!
//! Chunk sizes may legitimately differ from each other in the last ulp
//! (different association), so across chunk sizes only a small relative
//! tolerance is asserted — that check catches gross sharding bugs (lost or
//! double-counted chunks) without overclaiming bit equality.

use std::collections::BTreeMap;

use goldilocks_placement::Placement;
use goldilocks_sim::metering::{flow_tcts_ms_sharded, mean_tct_ms_sharded, MeteringWorkspace};
use goldilocks_sim::{LatencyModel, ParallelConfig};
use goldilocks_topology::builders::fat_tree;
use goldilocks_topology::{DcTree, NodeId, Resources, ServerId};
use goldilocks_workload::{ContainerId, Flow, Workload};
use proptest::prelude::*;

/// A random metering instance: tree, workload with flows, placement (with
/// deliberate unplaced holes) and per-server utilizations.
#[derive(Clone, Debug)]
struct Instance {
    tree: DcTree,
    w: Workload,
    p: Placement,
    utils: Vec<f64>,
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    // k ∈ {4, 6}: 16- and 54-server fat trees; then containers, flows and
    // the placement are drawn against that server count.
    (0usize..2, 2usize..40).prop_flat_map(|(ki, n)| {
        let k = 4 + 2 * ki;
        let servers = k * k * k / 4;
        let flows = proptest::collection::vec(
            // (a, b-offset, flow_count, mbps): `add_flow` rejects self-flows,
            // so b is drawn as a nonzero offset from a. Zero-weight flows
            // (count 0) and zero-rate flows (0 Mbps) included on purpose;
            // same-*server* flows still occur whenever the placement lands
            // both endpoints on one machine.
            (0usize..n, 1usize..n.max(2), 0i64..40, 0.0f64..400.0),
            0..60,
        );
        // Slot n+1 draws per container: index `servers` means unplaced.
        let slots = proptest::collection::vec(0usize..servers + 1, n);
        let utils = proptest::collection::vec(0.0f64..0.93, servers);
        (Just((k, servers, n)), flows, slots, utils).prop_map(
            |((k, servers, n), flows, slots, utils)| {
                let tree = fat_tree(k, Resources::new(400.0, 64.0, 1000.0), 1000.0);
                let mut w = Workload::new();
                for _ in 0..n {
                    w.add_container("app", Resources::new(10.0, 1.0, 10.0), None);
                }
                for (a, boff, count, mbps) in flows {
                    let b = (a + boff) % n;
                    if a != b {
                        w.add_flow(ContainerId(a), ContainerId(b), count, mbps);
                    }
                }
                let order = tree.servers_in_dfs_order();
                let p = Placement {
                    assignment: slots
                        .into_iter()
                        .map(|s| (s < servers).then(|| order[s]))
                        .collect(),
                };
                Instance { tree, w, p, utils }
            },
        )
    })
}

/// The pre-engine climb: uplinks crossed by the `a`→`b` path, deepest side
/// first, `a` winning depth ties — transcribed from `latency::link_loads`'s
/// original helper, kept here as the oracle's independent implementation.
fn oracle_crossed_uplinks(tree: &DcTree, a: ServerId, b: ServerId) -> Vec<NodeId> {
    let mut na = tree.server(a).node;
    let mut nb = tree.server(b).node;
    let mut crossed = Vec::new();
    while na != nb {
        let (da, db) = (tree.node(na).depth, tree.node(nb).depth);
        if da >= db {
            crossed.push(na);
            na = tree.node(na).parent.expect("non-root");
        }
        if db > da {
            crossed.push(nb);
            nb = tree.node(nb).parent.expect("non-root");
        }
    }
    crossed
}

/// Naive oracle: the exact pre-engine metering math in flow order — BTreeMap
/// link loads, a second climb per flow in the TCT pass, `net` summed apart
/// from `service` for the mean, hops folded into a running `tct` for the
/// samples. Returns (mean, samples).
fn oracle(m: &LatencyModel, inst: &Instance) -> (f64, Vec<(f64, f64)>) {
    let Instance { tree, w, p, utils } = inst;
    let mut loads: BTreeMap<NodeId, f64> = BTreeMap::new();
    for f in &w.flows {
        let (Some(sa), Some(sb)) = (
            p.assignment.get(f.a.0).copied().flatten(),
            p.assignment.get(f.b.0).copied().flatten(),
        ) else {
            continue;
        };
        if sa == sb {
            continue;
        }
        for node in oracle_crossed_uplinks(tree, sa, sb) {
            *loads.entry(node).or_insert(0.0) += f.mbps;
        }
    }
    let mut weighted = 0.0;
    let mut weight = 0.0;
    let mut samples = Vec::new();
    for f in &w.flows {
        let (Some(sa), Some(sb)) = (
            p.assignment.get(f.a.0).copied().flatten(),
            p.assignment.get(f.b.0).copied().flatten(),
        ) else {
            continue;
        };
        let util = |s: ServerId| utils.get(s.0).copied().unwrap_or(0.0);
        let rho = util(sa).max(util(sb)).min(m.server_queue_cap);
        let service = m.base_service_ms / (1.0 - rho);
        let mut net = 0.0;
        let mut tct = service;
        if sa != sb {
            for node in oracle_crossed_uplinks(tree, sa, sb) {
                let cap = tree.node(node).uplink_mbps;
                let lr = if cap.is_finite() && cap > 0.0 {
                    (loads.get(&node).copied().unwrap_or(0.0) / cap).min(m.link_queue_cap)
                } else {
                    0.0
                };
                let hop = m.per_hop_ms / (1.0 - lr);
                net += hop;
                tct += hop;
            }
        }
        let fw = f.flow_count.max(1) as f64;
        weighted += (service + net) * fw;
        weight += fw;
        samples.push((tct, fw));
    }
    let mean = if weight > 0.0 { weighted / weight } else { 0.0 };
    (mean, samples)
}

/// Engine run at the given chunk size and thread count; `min_parallel_flows`
/// is floored so worker threads genuinely spawn at test scale.
fn engine(
    m: &LatencyModel,
    inst: &Instance,
    chunk: usize,
    threads: usize,
) -> (f64, Vec<(f64, f64)>, Vec<f64>) {
    let cfg = ParallelConfig {
        metering_chunk_flows: chunk,
        min_parallel_flows: 1,
        ..ParallelConfig::with_threads(threads)
    };
    let mut ws = MeteringWorkspace::new();
    let mean = mean_tct_ms_sharded(
        m,
        &inst.w,
        &inst.p,
        &inst.tree,
        &inst.utils,
        |_: &Flow| true,
        &cfg,
        &mut ws,
    );
    let loads = ws.link_loads_dense().to_vec();
    let samples = flow_tcts_ms_sharded(
        m,
        &inst.w,
        &inst.p,
        &inst.tree,
        &inst.utils,
        |_: &Flow| true,
        &cfg,
        &mut ws,
    );
    (mean, samples, loads)
}

fn bits(samples: &[(f64, f64)]) -> Vec<(u64, u64)> {
    samples
        .iter()
        .map(|(t, w)| (t.to_bits(), w.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Single-chunk engine output is bit-identical to the naive flow-order
    /// oracle: mean, per-flow samples, and every dense link load.
    #[test]
    fn single_chunk_matches_naive_oracle_bitwise(inst in arb_instance()) {
        let m = LatencyModel::default();
        let (o_mean, o_samples) = oracle(&m, &inst);
        let (mean, samples, loads) = engine(&m, &inst, usize::MAX, 1);
        prop_assert_eq!(mean.to_bits(), o_mean.to_bits(),
            "mean {} != oracle {}", mean, o_mean);
        prop_assert_eq!(bits(&samples), bits(&o_samples));
        // Oracle loads live in a sparse map; untouched nodes must be 0.
        let mut o_loads: BTreeMap<NodeId, f64> = BTreeMap::new();
        for f in &inst.w.flows {
            let (Some(sa), Some(sb)) = (
                inst.p.assignment.get(f.a.0).copied().flatten(),
                inst.p.assignment.get(f.b.0).copied().flatten(),
            ) else { continue };
            if sa == sb { continue }
            for node in oracle_crossed_uplinks(&inst.tree, sa, sb) {
                *o_loads.entry(node).or_insert(0.0) += f.mbps;
            }
        }
        for (i, l) in loads.iter().enumerate() {
            let o = o_loads.get(&NodeId(i)).copied().unwrap_or(0.0);
            prop_assert_eq!(l.to_bits(), o.to_bits(), "load[{}] {} != {}", i, l, o);
        }
    }

    /// For any fixed chunk size, every thread count produces byte-identical
    /// results: mean, samples, and the combined link-load array.
    #[test]
    fn thread_count_never_changes_a_bit(inst in arb_instance(), chunk in 1usize..24) {
        let m = LatencyModel::default();
        let (r_mean, r_samples, r_loads) = engine(&m, &inst, chunk, 1);
        for threads in [2usize, 4, 8] {
            let (mean, samples, loads) = engine(&m, &inst, chunk, threads);
            prop_assert_eq!(mean.to_bits(), r_mean.to_bits(),
                "mean diverged at chunk {} threads {}", chunk, threads);
            prop_assert_eq!(bits(&samples), bits(&r_samples),
                "samples diverged at chunk {} threads {}", chunk, threads);
            let lb: Vec<u64> = loads.iter().map(|l| l.to_bits()).collect();
            let rb: Vec<u64> = r_loads.iter().map(|l| l.to_bits()).collect();
            prop_assert_eq!(lb, rb,
                "link loads diverged at chunk {} threads {}", chunk, threads);
        }
    }

    /// Different chunk sizes associate differently and may differ in the
    /// last ulp — but never more: a tight relative tolerance across chunk
    /// sizes catches lost or double-counted chunks.
    #[test]
    fn chunk_sizes_agree_to_rounding(inst in arb_instance(), chunk in 1usize..24) {
        let m = LatencyModel::default();
        let (single, _, _) = engine(&m, &inst, usize::MAX, 1);
        let (chunked, _, _) = engine(&m, &inst, chunk, 4);
        let tol = 1e-12 * single.abs().max(1.0);
        prop_assert!((chunked - single).abs() <= tol,
            "chunk {} drifted: {} vs {}", chunk, chunked, single);
    }
}
