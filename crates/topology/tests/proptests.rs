//! Property-based tests for topology invariants.

use goldilocks_topology::builders::{fat_tree, leaf_spine, single_rack};
use goldilocks_topology::{DcTree, NodeKind, Resources, ServerId};
use proptest::prelude::*;

fn arb_tree() -> impl Strategy<Value = DcTree> {
    prop_oneof![
        (1usize..5, 1usize..5, 1usize..4).prop_map(|(l, s, sp)| leaf_spine(
            l,
            s,
            sp,
            Resources::testbed_server(),
            1000.0
        )),
        (1usize..4).prop_map(|h| fat_tree(h * 2 + 2, Resources::testbed_server(), 1000.0)),
        (1usize..20).prop_map(|n| single_rack(n, Resources::testbed_server(), 1000.0)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hop distance is a metric: zero iff same server, symmetric, triangle.
    #[test]
    fn hop_distance_is_a_metric(tree in arb_tree(), seed in 0u64..1000) {
        let n = tree.server_count();
        let pick = |k: u64| ServerId(((seed.wrapping_mul(k + 1)) % n as u64) as usize);
        let (a, b, c) = (pick(3), pick(7), pick(11));
        prop_assert_eq!(tree.hop_distance(a, a), 0);
        prop_assert_eq!(tree.hop_distance(a, b), tree.hop_distance(b, a));
        if a != b {
            prop_assert!(tree.hop_distance(a, b) >= 2, "distinct servers are >= 2 links apart");
            // Even number of links in a tree topology (up then down).
            prop_assert_eq!(tree.hop_distance(a, b) % 2, 0);
        }
        let (ab, bc, ac) = (
            tree.hop_distance(a, b),
            tree.hop_distance(b, c),
            tree.hop_distance(a, c),
        );
        prop_assert!(ac <= ab + bc, "triangle violated: {ac} > {ab} + {bc}");
    }

    /// DFS order covers every server exactly once and keeps rack-mates
    /// adjacent.
    #[test]
    fn dfs_order_covers_and_clusters(tree in arb_tree()) {
        let order = tree.servers_in_dfs_order();
        let mut sorted: Vec<_> = order.iter().map(|s| s.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), tree.server_count());
        // Consecutive servers in DFS order are never farther apart than
        // non-consecutive ones on average (locality): specifically, any two
        // servers under the same parent appear contiguously.
        for w in order.windows(2) {
            let d = tree.hop_distance(w[0], w[1]);
            prop_assert!(d <= 2 * 4, "DFS neighbors absurdly far: {d}");
        }
    }

    /// Reservations never go negative and releases restore exactly.
    #[test]
    fn reservation_roundtrip(tree in arb_tree(), amount in 1.0f64..500.0) {
        let mut tree = tree;
        for node in tree.subtrees_smallest_first() {
            let before = tree.residual_mbps(node);
            if before.is_finite() && before >= amount {
                tree.reserve_mbps(node, amount).expect("fits");
                prop_assert!((tree.residual_mbps(node) - (before - amount)).abs() < 1e-6);
                tree.release_mbps(node, amount);
                prop_assert!((tree.residual_mbps(node) - before).abs() < 1e-6);
                // Over-release clamps at zero reservation.
                tree.release_mbps(node, 1e9);
                prop_assert!(tree.residual_mbps(node) <= tree.node(node).uplink_mbps + 1e-6);
            }
        }
    }

    /// Switch counting: monotone in the number of powered servers, zero
    /// when everything is off, full when everything is on.
    #[test]
    fn active_switches_monotone(tree in arb_tree(), on_bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let n = tree.server_count();
        let mut on: Vec<bool> = (0..n).map(|i| *on_bits.get(i % on_bits.len()).unwrap_or(&false)).collect();
        let some = tree.active_switch_count(&on);
        prop_assert!(some <= tree.switch_count());
        // Turning one more server on never decreases the count.
        if let Some(pos) = on.iter().position(|b| !*b) {
            on[pos] = true;
            let more = tree.active_switch_count(&on);
            prop_assert!(more >= some, "monotonicity violated: {more} < {some}");
        }
        prop_assert_eq!(tree.active_switch_count(&vec![false; n]), 0);
        prop_assert_eq!(tree.active_switch_count(&vec![true; n]), tree.switch_count());
    }

    /// Failing servers shrinks the healthy set and never breaks DFS order.
    #[test]
    fn failures_are_consistent(tree in arb_tree(), kill in 0usize..8) {
        let mut tree = tree;
        let n = tree.server_count();
        let kill = kill.min(n.saturating_sub(1));
        for k in 0..kill {
            tree.fail_server(ServerId(k));
        }
        prop_assert_eq!(tree.healthy_servers().len(), n - kill);
        let order = tree.servers_in_dfs_order();
        prop_assert_eq!(order.len(), n, "DFS still lists all servers");
        let mean = tree.mean_server_resources();
        prop_assert!(mean.cpu > 0.0);
    }

    /// Every non-root node's uplink is finite and positive; the subtree
    /// bandwidth never exceeds the sum of its servers' NICs (full bisection
    /// at most).
    #[test]
    fn uplinks_are_sane(tree in arb_tree()) {
        for id in tree.subtrees_smallest_first() {
            let node = tree.node(id);
            if node.parent.is_none() {
                prop_assert!(node.uplink_mbps.is_infinite());
                continue;
            }
            prop_assert!(node.uplink_mbps.is_finite() && node.uplink_mbps > 0.0);
            let nic_sum: f64 = tree
                .servers_under(id)
                .iter()
                .map(|s| tree.node(tree.server(*s).node).uplink_mbps)
                .sum();
            prop_assert!(
                node.uplink_mbps <= nic_sum + 1e-6,
                "subtree uplink {} exceeds NIC sum {nic_sum}",
                node.uplink_mbps
            );
        }
        // Node kinds partition: servers + switches == nodes.
        let switches = (0..tree.node_count())
            .filter(|i| matches!(tree.node(goldilocks_topology::NodeId(*i)).kind, NodeKind::Switch { .. }))
            .count();
        prop_assert_eq!(switches + tree.server_count(), tree.node_count());
    }
}
