//! Topology builders: fat-tree, leaf-spine (the paper's testbed), and the
//! large-scale simulation topology.

use crate::resources::Resources;
use crate::tree::{DcTree, NodeId, NodeKind, ServerId, ServerInfo, TreeNode};

/// Incrementally assembles a [`DcTree`].
struct TreeAssembler {
    nodes: Vec<TreeNode>,
    servers: Vec<ServerInfo>,
}

impl TreeAssembler {
    fn new() -> Self {
        TreeAssembler {
            nodes: Vec::new(),
            servers: Vec::new(),
        }
    }

    fn add_switch(
        &mut self,
        parent: Option<NodeId>,
        level: u8,
        switch_count: usize,
        uplink_mbps: f64,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        let depth = parent.map_or(0, |p| self.nodes[p.0].depth + 1);
        self.nodes.push(TreeNode {
            parent,
            children: Vec::new(),
            kind: NodeKind::Switch {
                level,
                switch_count,
            },
            uplink_mbps,
            reserved_mbps: 0.0,
            depth,
        });
        if let Some(p) = parent {
            self.nodes[p.0].children.push(id);
        }
        id
    }

    fn add_server(&mut self, parent: NodeId, resources: Resources, nic_mbps: f64) -> ServerId {
        let id = NodeId(self.nodes.len());
        let depth = self.nodes[parent.0].depth + 1;
        let server = ServerId(self.servers.len());
        self.nodes.push(TreeNode {
            parent: Some(parent),
            children: Vec::new(),
            kind: NodeKind::Server { server },
            uplink_mbps: nic_mbps,
            reserved_mbps: 0.0,
            depth,
        });
        self.nodes[parent.0].children.push(id);
        self.servers.push(ServerInfo {
            node: id,
            resources,
            failed: false,
        });
        server
    }

    fn finish(self, root: NodeId, name: impl Into<String>) -> DcTree {
        DcTree::from_parts(self.nodes, self.servers, root, name)
    }
}

/// Builds a k-ary fat-tree [Al-Fares et al., SIGCOMM 2008]:
/// `k` pods × `k/2` racks × `k/2` servers = `k³/4` servers, with `5k²/4`
/// switches (`k²/2` edge, `k²/2` aggregation, `k²/4` core). Full bisection
/// bandwidth: every subtree's uplink equals its servers' aggregate NIC rate.
///
/// # Panics
///
/// Panics if `k` is not an even number ≥ 2.
pub fn fat_tree(k: usize, server: Resources, nic_mbps: f64) -> DcTree {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity k={k} must be even and >= 2"
    );
    let half = k / 2;
    let mut a = TreeAssembler::new();
    let core = a.add_switch(None, 0, k * k / 4, f64::INFINITY);
    for _pod in 0..k {
        // A pod aggregates k/2 aggregation switches.
        let pod_uplink = (half * half) as f64 * nic_mbps;
        let pod = a.add_switch(Some(core), 1, half, pod_uplink);
        for _rack in 0..half {
            let rack_uplink = half as f64 * nic_mbps;
            let rack = a.add_switch(Some(pod), 2, 1, rack_uplink);
            for _s in 0..half {
                a.add_server(rack, server, nic_mbps);
            }
        }
    }
    a.finish(core, format!("fat-tree({k})"))
}

/// Builds a leaf-spine topology: `spines` spine switches fully meshed with
/// `leaves` leaf switches, each hosting `servers_per_leaf` servers. Each
/// leaf-to-spine link runs at `nic_mbps` (the paper's testbed used 1 GbE
/// everywhere), so a leaf's uplink is `spines × nic_mbps`.
pub fn leaf_spine(
    leaves: usize,
    servers_per_leaf: usize,
    spines: usize,
    server: Resources,
    nic_mbps: f64,
) -> DcTree {
    assert!(leaves > 0 && servers_per_leaf > 0 && spines > 0);
    let mut a = TreeAssembler::new();
    let root = a.add_switch(None, 0, spines, f64::INFINITY);
    for _ in 0..leaves {
        // Effective bisection bandwidth of the rack: bounded both by the
        // spine fan-out and by what its servers can inject.
        let uplink = (spines as f64 * nic_mbps).min(servers_per_leaf as f64 * nic_mbps);
        let leaf = a.add_switch(Some(root), 1, 1, uplink);
        for _ in 0..servers_per_leaf {
            a.add_server(leaf, server, nic_mbps);
        }
    }
    a.finish(root, format!("leaf-spine({leaves}x{servers_per_leaf})"))
}

/// The paper's 16-server testbed (Section V): 8 virtual leaf switches with 2
/// servers each, 2 spine switches, 1 GbE links, 32-core / 64 GB servers.
pub fn testbed_16() -> DcTree {
    leaf_spine(8, 2, 2, Resources::testbed_server(), 1000.0)
}

/// The large-scale simulation topology (Section VI-B): a 28-ary fat tree
/// with 5488 servers and 980 switches, 10 G NICs, Dell R940-class servers
/// (here 48 cores / 192 GB).
pub fn fat_tree_28() -> DcTree {
    fat_tree(28, Resources::new(4800.0, 192.0, 10_000.0), 10_000.0)
}

/// Builds a VL2-style topology [Greenberg et al., SIGCOMM 2009]: `tors`
/// top-of-rack switches with `servers_per_tor` servers each, an aggregation
/// fabric of `fabric` switches, and an explicit per-ToR uplink capacity
/// (VL2 ToRs carry 2×10 G uplinks regardless of the spine fan-out).
pub fn vl2(
    tors: usize,
    servers_per_tor: usize,
    fabric: usize,
    server: Resources,
    nic_mbps: f64,
    tor_uplink_mbps: f64,
) -> DcTree {
    assert!(tors > 0 && servers_per_tor > 0 && fabric > 0);
    let mut a = TreeAssembler::new();
    let root = a.add_switch(None, 0, fabric, f64::INFINITY);
    for _ in 0..tors {
        let tor = a.add_switch(Some(root), 1, 1, tor_uplink_mbps);
        for _ in 0..servers_per_tor {
            a.add_server(tor, server, nic_mbps);
        }
    }
    a.finish(root, format!("vl2({tors}x{servers_per_tor})"))
}

/// The VL2(96) row of Table I: 2304 ToRs × 20 servers = 46 080 servers, 144
/// fabric switches, 10 G servers with 2×40 G ToR uplinks.
pub fn vl2_96() -> DcTree {
    vl2(
        2304,
        20,
        144,
        Resources::new(3200.0, 128.0, 10_000.0),
        10_000.0,
        80_000.0,
    )
}

/// A single rack of `n` servers behind one ToR (useful in tests/examples).
pub fn single_rack(n: usize, server: Resources, nic_mbps: f64) -> DcTree {
    assert!(n > 0);
    let mut a = TreeAssembler::new();
    let root = a.add_switch(None, 0, 1, f64::INFINITY);
    for _ in 0..n {
        a.add_server(root, server, nic_mbps);
    }
    a.finish(root, format!("rack({n})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_counts() {
        for k in [4usize, 8, 28] {
            let t = fat_tree(k, Resources::testbed_server(), 1000.0);
            assert_eq!(t.server_count(), k * k * k / 4, "k={k} servers");
            assert_eq!(t.switch_count(), 5 * k * k / 4, "k={k} switches");
        }
    }

    #[test]
    fn simulation_topology_matches_paper() {
        let t = fat_tree_28();
        assert_eq!(t.server_count(), 5488);
        assert_eq!(t.switch_count(), 980);
    }

    #[test]
    fn testbed_matches_paper() {
        let t = testbed_16();
        assert_eq!(t.server_count(), 16);
        // 8 leaves + 2 spines = 10 physical switches.
        assert_eq!(t.switch_count(), 10);
        let s = t.server(ServerId(0));
        assert_eq!(s.resources.cpu, 3200.0);
        assert_eq!(s.resources.memory_gb, 64.0);
    }

    #[test]
    fn full_bisection_uplinks() {
        let t = fat_tree(4, Resources::testbed_server(), 1000.0);
        // A rack of 2 servers at 1000 Mbps each has a 2000 Mbps uplink.
        let rack = t.subtrees_smallest_first()[0];
        assert_eq!(t.node(rack).uplink_mbps, 2000.0);
        let servers = t.servers_under(rack);
        let total_nic: f64 = servers
            .iter()
            .map(|s| t.node(t.server(*s).node).uplink_mbps)
            .sum();
        assert_eq!(total_nic, t.node(rack).uplink_mbps);
    }

    #[test]
    fn leaf_spine_uplink_is_spine_fanout() {
        let t = leaf_spine(8, 2, 2, Resources::testbed_server(), 1000.0);
        let leaf = t.subtrees_smallest_first()[0];
        assert_eq!(t.node(leaf).uplink_mbps, 2000.0);
    }

    #[test]
    fn single_rack_distances() {
        let t = single_rack(4, Resources::testbed_server(), 1000.0);
        let order = t.servers_in_dfs_order();
        assert_eq!(t.hop_distance(order[0], order[3]), 2);
    }

    #[test]
    fn vl2_counts_match_table_one() {
        let t = vl2_96();
        assert_eq!(t.server_count(), 46080);
        assert_eq!(t.switch_count(), 2304 + 144);
        // ToR uplink is the fixed 2x40G, not servers × NIC.
        let tor = t.subtrees_smallest_first()[0];
        assert_eq!(t.node(tor).uplink_mbps, 80_000.0);
    }

    #[test]
    fn vl2_is_oversubscribed() {
        // 20 × 10 G of server NICs behind an 80 G uplink: 2.5:1.
        let t = vl2_96();
        let tor = t.subtrees_smallest_first()[0];
        let nic_sum: f64 = t
            .servers_under(tor)
            .iter()
            .map(|s| t.node(t.server(*s).node).uplink_mbps)
            .sum();
        assert!(nic_sum > t.node(tor).uplink_mbps);
        assert!((nic_sum / t.node(tor).uplink_mbps - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_fat_tree_rejected() {
        fat_tree(5, Resources::testbed_server(), 1000.0);
    }
}
