//! The data-center topology as a logical aggregation tree.
//!
//! Placement in the paper (Sections III–IV) treats the DCN as a hierarchy of
//! substructures — server ⊂ rack ⊂ pod ⊂ subtree — and assigns container
//! groups to the smallest left-most subtree that fits. We model exactly that
//! hierarchy: every internal node aggregates the physical switches of its
//! level (`switch_count`) and carries the *outbound* (bisection) bandwidth
//! between its subtree and the rest of the data center, which is what
//! Eq. (4)/(5) reserve against.

use serde::{Deserialize, Serialize};

use crate::resources::Resources;

/// Identifier of a node (server or switch aggregate) in a [`DcTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// Identifier of a server (dense, `0..server_count`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub usize);

/// What a tree node represents.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A physical server.
    Server {
        /// Dense server index.
        server: ServerId,
    },
    /// An aggregate of physical switches at one level of the hierarchy
    /// (a rack's ToR, a pod's aggregation layer, the core).
    Switch {
        /// Distance from the root (0 = core).
        level: u8,
        /// Number of physical switches this node aggregates.
        switch_count: usize,
    },
}

/// One node of the topology tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TreeNode {
    /// Parent node; `None` for the root.
    pub parent: Option<NodeId>,
    /// Children in left-to-right order.
    pub children: Vec<NodeId>,
    /// Node kind.
    pub kind: NodeKind,
    /// Bisection bandwidth between this subtree and the rest of the DC, in
    /// Mbps. Infinite for the root (no outbound link).
    pub uplink_mbps: f64,
    /// Bandwidth currently reserved on the outbound link(s).
    pub reserved_mbps: f64,
    /// Depth (root = 0).
    pub depth: usize,
}

/// Per-server bookkeeping.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerInfo {
    /// The server's node in the tree.
    pub node: NodeId,
    /// Resource capacity.
    pub resources: Resources,
    /// Whether the server is failed/unavailable.
    pub failed: bool,
}

/// Error from bandwidth reservation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InsufficientBandwidth {
    /// The node whose outbound link lacked capacity.
    pub node: NodeId,
    /// Requested Mbps.
    pub requested: f64,
    /// Available (residual) Mbps.
    pub available: f64,
}

impl std::fmt::Display for InsufficientBandwidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insufficient bandwidth at node {}: requested {:.1} Mbps, {:.1} available",
            self.node.0, self.requested, self.available
        )
    }
}

impl std::error::Error for InsufficientBandwidth {}

/// The logical data-center topology tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DcTree {
    nodes: Vec<TreeNode>,
    servers: Vec<ServerInfo>,
    root: NodeId,
    name: String,
}

impl DcTree {
    /// Builds a tree from raw parts. Intended for the builders in
    /// [`crate::builders`]; most users should start there.
    pub(crate) fn from_parts(
        nodes: Vec<TreeNode>,
        servers: Vec<ServerInfo>,
        root: NodeId,
        name: impl Into<String>,
    ) -> Self {
        DcTree {
            nodes,
            servers,
            root,
            name: name.into(),
        }
        .validated()
    }

    fn validated(self) -> Self {
        debug_assert!(self.root.0 < self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            for c in &n.children {
                debug_assert_eq!(self.nodes[c.0].parent, Some(NodeId(i)));
            }
        }
        self
    }

    /// Topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &TreeNode {
        &self.nodes[id.0]
    }

    /// Server info.
    pub fn server(&self, id: ServerId) -> &ServerInfo {
        &self.servers[id.0]
    }

    /// Total physical switch count.
    pub fn switch_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n.kind {
                NodeKind::Switch { switch_count, .. } => switch_count,
                NodeKind::Server { .. } => 0,
            })
            .sum()
    }

    /// Iterates over all servers in left-to-right (DFS) tree order — the
    /// order that preserves partition-tree sibling locality when assigning
    /// groups to servers.
    pub fn servers_in_dfs_order(&self) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(self.servers.len());
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id.0];
            if let NodeKind::Server { server } = n.kind {
                out.push(server);
            }
            // Push children reversed so the leftmost is processed first.
            for &c in n.children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All servers under `node` (in DFS order).
    pub fn servers_under(&self, node: NodeId) -> Vec<ServerId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id.0];
            if let NodeKind::Server { server } = n.kind {
                out.push(server);
            }
            for &c in n.children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Healthy (non-failed) servers.
    pub fn healthy_servers(&self) -> Vec<ServerId> {
        (0..self.servers.len())
            .map(ServerId)
            .filter(|s| !self.servers[s.0].failed)
            .collect()
    }

    /// Number of links on the shortest path between two servers — the edge
    /// weight of the capacity graph (Section III-A). Two servers in the same
    /// rack are 2 links apart; same pod 4; cross-pod 6 (fat-tree).
    pub fn hop_distance(&self, a: ServerId, b: ServerId) -> usize {
        if a == b {
            return 0;
        }
        let mut na = self.servers[a.0].node;
        let mut nb = self.servers[b.0].node;
        let mut hops = 0;
        while na != nb {
            let (da, db) = (self.nodes[na.0].depth, self.nodes[nb.0].depth);
            if da >= db {
                // lint:allow(no-panic-in-libs) -- LCA climb: `na != nb` means
                // neither side is the root yet, and every non-root has a parent.
                na = self.nodes[na.0].parent.expect("non-root has parent");
                hops += 1;
            }
            if db > da {
                // lint:allow(no-panic-in-libs) -- LCA climb: `na != nb` means
                // neither side is the root yet, and every non-root has a parent.
                nb = self.nodes[nb.0].parent.expect("non-root has parent");
                hops += 1;
            }
        }
        hops
    }

    /// All internal (switch) nodes, smallest subtrees first (deepest level
    /// first), left-to-right within a level. This is the search order for
    /// "the smallest left-most subtree" of Section IV-A.
    pub fn subtrees_smallest_first(&self) -> Vec<NodeId> {
        let mut internal: Vec<NodeId> = (0..self.nodes.len())
            .map(NodeId)
            .filter(|id| matches!(self.nodes[id.0].kind, NodeKind::Switch { .. }))
            .collect();
        internal.sort_by_key(|id| (usize::MAX - self.nodes[id.0].depth, id.0));
        internal
    }

    /// Residual (unreserved) outbound bandwidth of `node`.
    pub fn residual_mbps(&self, node: NodeId) -> f64 {
        let n = &self.nodes[node.0];
        (n.uplink_mbps - n.reserved_mbps).max(0.0)
    }

    /// Reserves `mbps` on the outbound link(s) of `node`.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientBandwidth`] without reserving anything if the
    /// residual bandwidth is smaller than `mbps`.
    pub fn reserve_mbps(&mut self, node: NodeId, mbps: f64) -> Result<(), InsufficientBandwidth> {
        let available = self.residual_mbps(node);
        if mbps > available + 1e-9 {
            return Err(InsufficientBandwidth {
                node,
                requested: mbps,
                available,
            });
        }
        self.nodes[node.0].reserved_mbps += mbps;
        Ok(())
    }

    /// Releases a previous reservation (clamped at zero).
    pub fn release_mbps(&mut self, node: NodeId, mbps: f64) {
        let n = &mut self.nodes[node.0];
        n.reserved_mbps = (n.reserved_mbps - mbps).max(0.0);
    }

    /// Clears all bandwidth reservations (start of a new epoch).
    pub fn clear_reservations(&mut self) {
        for n in &mut self.nodes {
            n.reserved_mbps = 0.0;
        }
    }

    // ----- asymmetry: failures & heterogeneity -----------------------------

    /// Degrades the outbound bandwidth of `node` to `factor` of its current
    /// value (link failures make the topology asymmetric, Section IV).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `[0, 1]`.
    pub fn degrade_uplink(&mut self, node: NodeId, factor: f64) {
        assert!((0.0..=1.0).contains(&factor), "factor {factor}");
        let n = &mut self.nodes[node.0];
        if n.uplink_mbps.is_finite() {
            n.uplink_mbps *= factor;
        }
    }

    /// Current outbound bandwidth of `node`, Mbps (infinite at the root).
    pub fn uplink_mbps(&self, node: NodeId) -> f64 {
        self.nodes[node.0].uplink_mbps
    }

    /// Sets the outbound bandwidth of `node` to an absolute value — the
    /// repair counterpart of [`DcTree::degrade_uplink`], which only scales
    /// downward relative to the current (possibly already degraded) value.
    /// The root's infinite uplink is left untouched.
    pub fn set_uplink_mbps(&mut self, node: NodeId, mbps: f64) {
        let n = &mut self.nodes[node.0];
        if n.uplink_mbps.is_finite() {
            n.uplink_mbps = mbps;
        }
    }

    /// The rack-level nodes: switch aggregates whose children are servers.
    /// These are the natural victims of ToR/uplink fault injection.
    pub fn rack_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .map(NodeId)
            .filter(|id| {
                matches!(self.nodes[id.0].kind, NodeKind::Switch { .. })
                    && self.nodes[id.0]
                        .children
                        .iter()
                        .any(|c| matches!(self.nodes[c.0].kind, NodeKind::Server { .. }))
            })
            .collect()
    }

    /// Marks a server failed: it stops being eligible for placement.
    pub fn fail_server(&mut self, server: ServerId) {
        self.servers[server.0].failed = true;
    }

    /// Restores a failed server.
    pub fn restore_server(&mut self, server: ServerId) {
        self.servers[server.0].failed = false;
    }

    /// Replaces a server's capacity (heterogeneous hardware, Section IV).
    pub fn set_server_resources(&mut self, server: ServerId, resources: Resources) {
        self.servers[server.0].resources = resources;
    }

    /// Mean capacity across healthy servers — the "average capacity of the
    /// heterogeneous servers" the Section IV-A partitioning stop-rule uses.
    pub fn mean_server_resources(&self) -> Resources {
        let healthy = self.healthy_servers();
        if healthy.is_empty() {
            return Resources::zero();
        }
        let total: Resources = healthy.iter().map(|s| self.servers[s.0].resources).sum();
        total.scaled(1.0 / healthy.len() as f64)
    }

    /// Counts the physical switches that must stay powered given per-server
    /// on/off state: a switch aggregate is on iff any server beneath it is
    /// on; the count scales with the fraction of its children subtrees that
    /// are active (an aggregation layer can gate individual member switches).
    pub fn active_switch_count(&self, server_on: &[bool]) -> usize {
        assert_eq!(server_on.len(), self.servers.len());
        let mut active = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if let NodeKind::Switch { switch_count, .. } = n.kind {
                let under = self.servers_under(NodeId(i));
                let on = under.iter().filter(|s| server_on[s.0]).count();
                if on == 0 {
                    continue;
                }
                if n.children.is_empty() {
                    active += switch_count;
                    continue;
                }
                // Member switches scale with the active-child fraction, with
                // at least one member on.
                let active_children = n
                    .children
                    .iter()
                    .filter(|c| self.servers_under(**c).iter().any(|s| server_on[s.0]))
                    .count();
                let frac = active_children as f64 / n.children.len() as f64;
                active += ((switch_count as f64 * frac).ceil() as usize).clamp(1, switch_count);
            }
        }
        active
    }

    /// The parent chain from `node` up to (and including) the root.
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.nodes[node.0].parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.nodes[p.0].parent;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{fat_tree, leaf_spine};

    #[test]
    fn hop_distances_in_fat_tree() {
        let t = fat_tree(4, Resources::testbed_server(), 1000.0);
        // k=4: 16 servers, 4 pods × 2 racks × 2 servers.
        assert_eq!(t.server_count(), 16);
        let order = t.servers_in_dfs_order();
        assert_eq!(order.len(), 16);
        // Same rack: 2 hops; same pod: 4; cross-pod: 6.
        assert_eq!(t.hop_distance(order[0], order[0]), 0);
        assert_eq!(t.hop_distance(order[0], order[1]), 2);
        assert_eq!(t.hop_distance(order[0], order[2]), 4);
        assert_eq!(t.hop_distance(order[0], order[15]), 6);
    }

    #[test]
    fn dfs_order_is_dense_and_unique() {
        let t = fat_tree(4, Resources::testbed_server(), 1000.0);
        let mut order = t.servers_in_dfs_order();
        order.sort();
        order.dedup();
        assert_eq!(order.len(), 16);
    }

    #[test]
    fn reservation_accounting() {
        let mut t = leaf_spine(2, 2, 2, Resources::testbed_server(), 1000.0);
        let racks: Vec<NodeId> = t.subtrees_smallest_first();
        let rack = racks[0];
        let cap = t.residual_mbps(rack);
        assert!(cap > 0.0);
        t.reserve_mbps(rack, cap / 2.0).unwrap();
        assert!((t.residual_mbps(rack) - cap / 2.0).abs() < 1e-9);
        let err = t.reserve_mbps(rack, cap).unwrap_err();
        assert_eq!(err.node, rack);
        t.release_mbps(rack, cap / 2.0);
        assert!((t.residual_mbps(rack) - cap).abs() < 1e-9);
        t.reserve_mbps(rack, cap).unwrap();
        t.clear_reservations();
        assert!((t.residual_mbps(rack) - cap).abs() < 1e-9);
    }

    #[test]
    fn smallest_subtrees_come_first() {
        let t = fat_tree(4, Resources::testbed_server(), 1000.0);
        let order = t.subtrees_smallest_first();
        // Depth must be non-increasing.
        for pair in order.windows(2) {
            assert!(t.node(pair[0]).depth >= t.node(pair[1]).depth);
        }
        // The last entry is the root.
        assert_eq!(*order.last().unwrap(), t.root());
    }

    #[test]
    fn failures_shrink_healthy_set() {
        let mut t = leaf_spine(2, 2, 2, Resources::testbed_server(), 1000.0);
        assert_eq!(t.healthy_servers().len(), 4);
        t.fail_server(ServerId(1));
        assert_eq!(t.healthy_servers().len(), 3);
        t.restore_server(ServerId(1));
        assert_eq!(t.healthy_servers().len(), 4);
    }

    #[test]
    fn degrade_uplink_reduces_residual() {
        let mut t = leaf_spine(2, 2, 2, Resources::testbed_server(), 1000.0);
        let rack = t.subtrees_smallest_first()[0];
        let before = t.residual_mbps(rack);
        t.degrade_uplink(rack, 0.5);
        assert!((t.residual_mbps(rack) - before / 2.0).abs() < 1e-9);
    }

    #[test]
    fn mean_resources_over_heterogeneous_servers() {
        let mut t = leaf_spine(2, 2, 2, Resources::new(100.0, 10.0, 100.0), 1000.0);
        t.set_server_resources(ServerId(0), Resources::new(300.0, 30.0, 300.0));
        let mean = t.mean_server_resources();
        assert!((mean.cpu - 150.0).abs() < 1e-9);
        t.fail_server(ServerId(0));
        let mean2 = t.mean_server_resources();
        assert!((mean2.cpu - 100.0).abs() < 1e-9);
    }

    #[test]
    fn active_switch_count_scales_with_active_racks() {
        let t = fat_tree(4, Resources::testbed_server(), 1000.0);
        let all_on = vec![true; 16];
        let full = t.active_switch_count(&all_on);
        assert_eq!(full, t.switch_count(), "everything on = all switches");
        // Only the first rack's two servers on.
        let order = t.servers_in_dfs_order();
        let mut two_on = vec![false; 16];
        two_on[order[0].0] = true;
        two_on[order[1].0] = true;
        let few = t.active_switch_count(&two_on);
        assert!(few < full, "{few} !< {full}");
        // At minimum: 1 edge + some agg + some core.
        assert!(few >= 3, "{few}");
        let none = t.active_switch_count(&[false; 16]);
        assert_eq!(none, 0);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let t = fat_tree(4, Resources::testbed_server(), 1000.0);
        let s0 = t.servers_in_dfs_order()[0];
        let node = t.server(s0).node;
        let anc = t.ancestors(node);
        assert_eq!(anc.len(), 3, "server → rack → pod → root");
        assert_eq!(*anc.last().unwrap(), t.root());
    }

    #[test]
    fn root_has_infinite_uplink() {
        let t = fat_tree(4, Resources::testbed_server(), 1000.0);
        assert!(t.node(t.root()).uplink_mbps.is_infinite());
        assert!(t.residual_mbps(t.root()).is_infinite());
    }

    #[test]
    fn uplink_degrade_and_absolute_repair_roundtrip() {
        let mut t = fat_tree(4, Resources::testbed_server(), 1000.0);
        let rack = t.rack_nodes()[0];
        let before = t.uplink_mbps(rack);
        t.degrade_uplink(rack, 0.10);
        assert!((t.uplink_mbps(rack) - before * 0.10).abs() < 1e-9);
        // Repeated degradation compounds; absolute repair undoes all of it.
        t.degrade_uplink(rack, 0.10);
        assert!((t.uplink_mbps(rack) - before * 0.01).abs() < 1e-9);
        t.set_uplink_mbps(rack, before);
        assert_eq!(t.uplink_mbps(rack), before);
        // The root's infinite uplink stays infinite.
        t.set_uplink_mbps(t.root(), 42.0);
        assert!(t.uplink_mbps(t.root()).is_infinite());
    }

    #[test]
    fn rack_nodes_cover_every_server_exactly_once() {
        for t in [
            fat_tree(4, Resources::testbed_server(), 1000.0),
            leaf_spine(3, 4, 2, Resources::testbed_server(), 1000.0),
        ] {
            let racks = t.rack_nodes();
            assert!(!racks.is_empty());
            let mut covered: Vec<ServerId> =
                racks.iter().flat_map(|r| t.servers_under(*r)).collect();
            covered.sort_unstable();
            covered.dedup();
            assert_eq!(covered.len(), t.server_count());
            for r in racks {
                assert!(matches!(t.node(r).kind, NodeKind::Switch { .. }));
            }
        }
    }
}
