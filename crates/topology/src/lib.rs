//! # goldilocks-topology
//!
//! Data-center network topologies for the Goldilocks reproduction
//! (ICDCS 2019), modeled as the logical aggregation tree that placement
//! operates on: server ⊂ rack ⊂ pod ⊂ core, each internal node carrying its
//! subtree's outbound (bisection) bandwidth and the number of physical
//! switches it aggregates.
//!
//! - [`Resources`]: the ⟨CPU, memory, network⟩ vector of Section III-A.
//! - [`DcTree`]: topology tree with hop distances, left-to-right server
//!   order, smallest-subtree enumeration, bandwidth reservation
//!   (Eq. 4/5 bookkeeping), link degradation and server failures.
//! - [`builders`]: [`builders::fat_tree`] (incl. the 28-ary / 5488-server
//!   simulation topology), [`builders::leaf_spine`] and the paper's
//!   16-server [`builders::testbed_16`].
//!
//! ## Example
//!
//! ```
//! use goldilocks_topology::builders::fat_tree_28;
//!
//! let dc = fat_tree_28();
//! assert_eq!(dc.server_count(), 5488); // Section VI-B
//! assert_eq!(dc.switch_count(), 980);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod builders;
mod resources;
mod tree;

pub use resources::Resources;
pub use tree::{DcTree, InsufficientBandwidth, NodeId, NodeKind, ServerId, ServerInfo, TreeNode};
