//! Multi-dimensional server resources: ⟨CPU, memory, network⟩.
//!
//! This is the 3-dimensional vector the paper uses for both capacity-graph
//! vertex weights (Section III-A) and container resource demands.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A resource vector: CPU (in units of cores × 100 %, so `2400.0` = 24 cores
/// at 100 %), memory in GB and network bandwidth in Mbps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Resources {
    /// CPU demand/capacity, in core-percent (1 core fully busy = 100.0).
    pub cpu: f64,
    /// Memory, in GB.
    pub memory_gb: f64,
    /// Network bandwidth, in Mbps.
    pub network_mbps: f64,
}

impl Resources {
    /// Creates a resource vector.
    pub fn new(cpu: f64, memory_gb: f64, network_mbps: f64) -> Self {
        Resources {
            cpu,
            memory_gb,
            network_mbps,
        }
    }

    /// The zero vector.
    pub fn zero() -> Self {
        Resources::default()
    }

    /// The paper's testbed server: 32 cores, 64 GB, 1 GbE.
    pub fn testbed_server() -> Self {
        Resources::new(3200.0, 64.0, 1000.0)
    }

    /// The Fig. 4 example server: 24 cores, 256 GB, 1000 Mbps.
    pub fn example_server() -> Self {
        Resources::new(2400.0, 256.0, 1000.0)
    }

    /// True when every component of `self` fits within `other` (with a small
    /// epsilon for float error).
    pub fn fits_within(&self, other: &Resources) -> bool {
        const EPS: f64 = 1e-9;
        self.cpu <= other.cpu + EPS
            && self.memory_gb <= other.memory_gb + EPS
            && self.network_mbps <= other.network_mbps + EPS
    }

    /// Component-wise scaling.
    pub fn scaled(&self, factor: f64) -> Resources {
        Resources {
            cpu: self.cpu * factor,
            memory_gb: self.memory_gb * factor,
            network_mbps: self.network_mbps * factor,
        }
    }

    /// The worst-case utilization of `self` as a demand against `capacity`,
    /// i.e. the max component-wise ratio. Returns `f64::INFINITY` when a
    /// non-zero demand meets a zero capacity.
    pub fn utilization_against(&self, capacity: &Resources) -> f64 {
        let ratio = |d: f64, c: f64| {
            if d <= 0.0 {
                0.0
            } else if c <= 0.0 {
                f64::INFINITY
            } else {
                d / c
            }
        };
        ratio(self.cpu, capacity.cpu)
            .max(ratio(self.memory_gb, capacity.memory_gb))
            .max(ratio(self.network_mbps, capacity.network_mbps))
    }

    /// CPU-only utilization ratio against `capacity` (the paper's packing
    /// thresholds are CPU utilizations).
    pub fn cpu_utilization_against(&self, capacity: &Resources) -> f64 {
        if capacity.cpu <= 0.0 {
            if self.cpu <= 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.cpu / capacity.cpu
        }
    }

    /// The 3-component array ⟨cpu, memory, network⟩ (for graph weights).
    pub fn as_array(&self) -> [f64; 3] {
        [self.cpu, self.memory_gb, self.network_mbps]
    }

    /// Builds from the 3-component array ⟨cpu, memory, network⟩.
    pub fn from_array(a: [f64; 3]) -> Self {
        let [cpu, memory_gb, network_mbps] = a;
        Resources::new(cpu, memory_gb, network_mbps)
    }

    /// Clamps all components at zero from below (guards float drift after
    /// repeated add/sub cycles).
    pub fn clamped_non_negative(&self) -> Resources {
        Resources {
            cpu: self.cpu.max(0.0),
            memory_gb: self.memory_gb.max(0.0),
            network_mbps: self.network_mbps.max(0.0),
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            cpu: self.cpu + rhs.cpu,
            memory_gb: self.memory_gb + rhs.memory_gb,
            network_mbps: self.network_mbps + rhs.network_mbps,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            cpu: self.cpu - rhs.cpu,
            memory_gb: self.memory_gb - rhs.memory_gb,
            network_mbps: self.network_mbps - rhs.network_mbps,
        }
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{:.1} cpu%, {:.1} GB, {:.1} Mbps⟩",
            self.cpu, self.memory_gb, self.network_mbps
        )
    }
}

impl std::iter::Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Resources::new(100.0, 4.0, 24.0);
        let b = Resources::new(50.0, 2.0, 12.0);
        assert_eq!(a + b, Resources::new(150.0, 6.0, 36.0));
        assert_eq!(a - b, b);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn fits_within_componentwise() {
        let demand = Resources::new(100.0, 4.0, 24.0);
        let server = Resources::testbed_server();
        assert!(demand.fits_within(&server));
        assert!(!Resources::new(4000.0, 1.0, 1.0).fits_within(&server));
        assert!(!Resources::new(1.0, 100.0, 1.0).fits_within(&server));
        assert!(!Resources::new(1.0, 1.0, 2000.0).fits_within(&server));
    }

    #[test]
    fn utilization_is_worst_dimension() {
        let demand = Resources::new(1600.0, 16.0, 100.0);
        let server = Resources::testbed_server(); // 3200, 64, 1000
        let u = demand.utilization_against(&server);
        assert!((u - 0.5).abs() < 1e-12, "worst dim is CPU at 50 %, got {u}");
        let mem_heavy = Resources::new(100.0, 48.0, 100.0);
        assert!((mem_heavy.utilization_against(&server) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_is_infinite_utilization() {
        let demand = Resources::new(1.0, 0.0, 0.0);
        assert!(demand.utilization_against(&Resources::zero()).is_infinite());
        assert_eq!(
            Resources::zero().utilization_against(&Resources::zero()),
            0.0
        );
    }

    #[test]
    fn array_roundtrip() {
        let r = Resources::new(1.0, 2.0, 3.0);
        assert_eq!(Resources::from_array(r.as_array()), r);
    }

    #[test]
    fn sum_and_scale() {
        let total: Resources = (0..4).map(|_| Resources::new(1.0, 2.0, 3.0)).sum();
        assert_eq!(total, Resources::new(4.0, 8.0, 12.0));
        assert_eq!(total.scaled(0.5), Resources::new(2.0, 4.0, 6.0));
    }

    #[test]
    fn clamp_negative_drift() {
        let r = Resources::new(-1e-15, 1.0, -0.5);
        let c = r.clamped_non_negative();
        assert_eq!(c.cpu, 0.0);
        assert_eq!(c.memory_gb, 1.0);
        assert_eq!(c.network_mbps, 0.0);
    }

    #[test]
    fn display_mentions_units() {
        let s = format!("{}", Resources::new(1.0, 2.0, 3.0));
        assert!(s.contains("cpu%") && s.contains("GB") && s.contains("Mbps"));
    }
}
