//! Migration-aware Goldilocks: the Section IV-C extension.
//!
//! The paper notes that "the number of container migrations is the
//! 'difference' between prior container grouping results and the current
//! grouping results" and defers incremental partitioning to future work.
//! This placer implements it: it remembers the previous epoch's grouping,
//! repartitions incrementally (relabeling for maximum overlap + a
//! stickiness pass that keeps containers in their old group when the cut
//! damage is small), and pins each surviving group to the server it already
//! occupies — so an unchanged workload migrates nothing, and a mildly
//! changed one migrates only what the partition quality requires.

use std::collections::BTreeMap;

use goldilocks_partition::{incremental_repartition, VertexWeight};
use goldilocks_placement::{PlaceError, Placement, Placer};
use goldilocks_topology::{DcTree, Resources, ServerId};
use goldilocks_workload::{ContainerGraphCache, Workload};

use crate::config::GoldilocksConfig;

/// Stateful Goldilocks with incremental repartitioning.
#[derive(Clone, Debug)]
pub struct IncrementalGoldilocks {
    /// Algorithm configuration.
    pub config: GoldilocksConfig,
    /// Cut-vs-migration trade-off in `[0, 1]`: 0 = fresh partition every
    /// epoch, 1 = keep containers in their old group whenever capacity
    /// allows.
    pub stickiness: f64,
    /// Previous epoch's group label per container.
    previous_groups: Vec<Option<usize>>,
    /// Which server each group label occupies.
    group_servers: BTreeMap<usize, ServerId>,
    /// Epoch-reusable container-graph cache (byte-identical to fresh builds).
    graph_cache: ContainerGraphCache,
}

impl IncrementalGoldilocks {
    /// Creates the placer with the paper configuration and the given
    /// stickiness.
    ///
    /// # Panics
    ///
    /// Panics if `stickiness` is outside `[0, 1]`.
    pub fn new(stickiness: f64) -> Self {
        IncrementalGoldilocks::with_config(GoldilocksConfig::paper(), stickiness)
    }

    /// Creates the placer with a custom configuration.
    pub fn with_config(config: GoldilocksConfig, stickiness: f64) -> Self {
        assert!((0.0..=1.0).contains(&stickiness), "stickiness {stickiness}");
        IncrementalGoldilocks {
            config,
            stickiness,
            previous_groups: Vec::new(),
            group_servers: BTreeMap::new(),
            graph_cache: ContainerGraphCache::new(),
        }
    }

    /// Forgets all history (e.g. after a topology change).
    pub fn reset(&mut self) {
        self.previous_groups.clear();
        self.group_servers.clear();
    }
}

impl Placer for IncrementalGoldilocks {
    fn name(&self) -> &str {
        "Goldilocks-Inc"
    }

    fn place(&mut self, workload: &Workload, tree: &DcTree) -> Result<Placement, PlaceError> {
        let healthy = tree.healthy_servers();
        if healthy.is_empty() {
            return Err(PlaceError::Infeasible {
                reason: "no healthy servers".into(),
            });
        }
        if workload.is_empty() {
            self.previous_groups.clear();
            return Ok(Placement::unplaced(0));
        }

        let min_cap = healthy
            .iter()
            .map(|s| tree.server(*s).resources)
            .fold(None::<Resources>, |acc, r| match acc {
                None => Some(r),
                Some(a) => Some(Resources::new(
                    a.cpu.min(r.cpu),
                    a.memory_gb.min(r.memory_gb),
                    a.network_mbps.min(r.network_mbps),
                )),
            })
            .ok_or_else(|| PlaceError::Infeasible {
                reason: "no healthy servers".to_string(),
            })?;
        let cap = self.config.cap_resources(&min_cap);
        let cap_weight = VertexWeight::new(cap.as_array().to_vec());

        let graph = self
            .graph_cache
            .build(workload, self.config.anti_affinity_weight)
            .map_err(|e| PlaceError::Infeasible {
                reason: format!("container graph: {e}"),
            })?;

        // Old labels, padded/truncated to the current container count.
        let mut old: Vec<Option<usize>> = self.previous_groups.clone();
        old.resize(workload.len(), None);

        let result = incremental_repartition(
            graph,
            &old,
            |w| w.fits_within(&cap_weight),
            self.stickiness,
            &self.config.bisect,
        )
        .map_err(|e| PlaceError::Infeasible {
            reason: format!("incremental repartition: {e}"),
        })?;

        // Survivor groups keep their server; new labels get the next free
        // healthy server in topology DFS order.
        let mut live_labels: Vec<usize> = result.assignment.clone();
        live_labels.sort_unstable();
        live_labels.dedup();

        let dfs: Vec<ServerId> = tree
            .servers_in_dfs_order()
            .into_iter()
            .filter(|s| !tree.server(*s).failed)
            .collect();
        let mut used_servers: std::collections::BTreeSet<ServerId> =
            std::collections::BTreeSet::new();
        let mut mapping: BTreeMap<usize, ServerId> = BTreeMap::new();
        for &label in &live_labels {
            if let Some(&s) = self.group_servers.get(&label) {
                if !tree.server(s).failed && used_servers.insert(s) {
                    mapping.insert(label, s);
                }
            }
        }
        let mut free = dfs.iter().copied().filter(|s| !used_servers.contains(s));
        for &label in &live_labels {
            if let std::collections::btree_map::Entry::Vacant(e) = mapping.entry(label) {
                let s = free.next().ok_or_else(|| PlaceError::Infeasible {
                    reason: format!(
                        "{} groups exceed {} healthy servers",
                        live_labels.len(),
                        dfs.len()
                    ),
                })?;
                e.insert(s);
            }
        }

        // Validate capacity per assigned server (a heterogeneous pinned
        // server may be smaller than the min-cap assumption).
        let mut placement = Placement::unplaced(workload.len());
        let mut loads: BTreeMap<ServerId, Resources> = BTreeMap::new();
        for (c, &label) in result.assignment.iter().enumerate() {
            let s = mapping[&label];
            let entry = loads.entry(s).or_insert_with(Resources::zero);
            *entry += workload.containers[c].demand;
            placement.assignment[c] = Some(s);
        }
        for (&s, load) in &loads {
            let scap = self.config.cap_resources(&tree.server(s).resources);
            if !load.fits_within(&scap) {
                // Rare: a pinned group outgrew its server. Drop history and
                // fall back to a clean placement.
                self.reset();
                let mut fresh = crate::goldilocks::Goldilocks::with_config(self.config.clone());
                let placement = fresh.place(workload, tree)?;
                // Rebuild state from the fresh placement: one label per
                // server in assignment order.
                let mut label_of_server: BTreeMap<ServerId, usize> = BTreeMap::new();
                let mut groups = Vec::new();
                for a in placement.assignment.iter().flatten() {
                    let next = label_of_server.len();
                    let label = *label_of_server.entry(*a).or_insert(next);
                    groups.push(Some(label));
                }
                self.previous_groups = groups;
                self.group_servers = label_of_server
                    .into_iter()
                    .map(|(srv, label)| (label, srv))
                    .collect();
                return Ok(placement);
            }
        }

        self.previous_groups = result.assignment.iter().map(|&g| Some(g)).collect();
        self.group_servers = mapping;
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldilocks_topology::builders::testbed_16;
    use goldilocks_workload::generators::twitter_caching;

    #[test]
    fn steady_state_migrates_nothing() {
        let tree = testbed_16();
        let w = twitter_caching(96, 21);
        let mut placer = IncrementalGoldilocks::new(1.0);
        let p1 = placer.place(&w, &tree).unwrap();
        let p2 = placer.place(&w, &tree).unwrap();
        assert_eq!(
            p2.migrations_from(&p1),
            0,
            "identical epochs must not migrate"
        );
    }

    #[test]
    fn fewer_migrations_than_stateless_goldilocks() {
        use crate::goldilocks::Goldilocks;
        let tree = testbed_16();
        // Load wobbles ±10 % across epochs.
        let mut inc = IncrementalGoldilocks::new(0.8);
        let mut fresh = Goldilocks::new();
        let mut inc_migs = 0usize;
        let mut fresh_migs = 0usize;
        let mut prev_inc: Option<Placement> = None;
        let mut prev_fresh: Option<Placement> = None;
        for e in 0..6 {
            let mut w = twitter_caching(96, 21);
            w.scale_load(0.9 + 0.02 * e as f64);
            let pi = inc.place(&w, &tree).unwrap();
            let pf = fresh.place(&w, &tree).unwrap();
            if let Some(prev) = &prev_inc {
                inc_migs += pi.migrations_from(prev);
            }
            if let Some(prev) = &prev_fresh {
                fresh_migs += pf.migrations_from(prev);
            }
            prev_inc = Some(pi);
            prev_fresh = Some(pf);
        }
        assert!(
            inc_migs <= fresh_migs,
            "incremental migrated more ({inc_migs}) than stateless ({fresh_migs})"
        );
    }

    #[test]
    fn capacity_still_respected() {
        let tree = testbed_16();
        let mut placer = IncrementalGoldilocks::new(1.0);
        for e in 0..4 {
            let mut w = twitter_caching(120, 5);
            w.scale_load(0.7 + 0.1 * e as f64);
            let p = placer.place(&w, &tree).unwrap();
            assert!(p.is_complete());
            for u in p.server_cpu_utilizations(&w, &tree) {
                assert!(u <= 0.70 + 1e-9, "PEE violated at epoch {e}: {u}");
            }
        }
    }

    #[test]
    fn growing_workload_keeps_existing_placements_mostly() {
        let tree = testbed_16();
        let mut placer = IncrementalGoldilocks::new(1.0);
        let base = twitter_caching(96, 33);
        let p1 = placer.place(&base.prefix(64), &tree).unwrap();
        let p2 = placer.place(&base.prefix(96), &tree).unwrap();
        // The 64 surviving containers should mostly stay put.
        let moved = p2
            .assignment
            .iter()
            .take(64)
            .zip(&p1.assignment)
            .filter(|(n, o)| n != o)
            .count();
        assert!(moved <= 24, "{moved}/64 moved on growth");
    }

    #[test]
    fn reset_clears_history() {
        let tree = testbed_16();
        let w = twitter_caching(64, 3);
        let mut placer = IncrementalGoldilocks::new(1.0);
        let _ = placer.place(&w, &tree).unwrap();
        placer.reset();
        assert!(placer.previous_groups.is_empty());
    }

    #[test]
    #[should_panic(expected = "stickiness")]
    fn invalid_stickiness_rejected() {
        IncrementalGoldilocks::new(1.5);
    }
}
