//! Virtual-Cluster placement on asymmetric topologies (Section IV).
//!
//! Each container group from the recursive bisection becomes an
//! Oktopus-style *Virtual Cluster*: its members hang off one virtual switch,
//! member `i` needing bandwidth `B_i` (its total flow traffic). Groups are
//! placed, in order, onto the smallest left-most subtree whose servers have
//! capacity **and** whose outbound link(s) can reserve the Eq. (4)/(5)
//! bandwidth:
//!
//! ```text
//! R = min( Σ_{q∈a} B_q ,  Σ_{r∈b} B_r + Σ_{s∈outside} B_s )
//! ```
//!
//! where component `a` is the part of the group inside the subtree,
//! component `b` the part that spills outside, and `outside` covers the
//! already-placed containers beyond this subtree plus (conservatively) every
//! still-unplaced group. When no subtree can host a whole group, the group
//! splits: the largest bandwidth-feasible component `a` is committed and the
//! remainder re-queued.

use goldilocks_partition::VertexWeight;
use goldilocks_placement::{LoadTracker, PlaceError, Placement, Placer};
use goldilocks_topology::{DcTree, NodeId, ServerId};
use goldilocks_workload::{ContainerGraphCache, Workload};

use crate::config::GoldilocksConfig;

/// A container group abstracted as a 2-level Virtual Cluster.
#[derive(Clone, Debug)]
pub struct VirtualCluster {
    /// Container indices of the members.
    pub members: Vec<usize>,
    /// Bandwidth requirement `B_i` of each member, parallel to `members`.
    pub bandwidth: Vec<f64>,
}

impl VirtualCluster {
    /// Total bandwidth of a member subset (by position).
    fn bandwidth_of(&self, positions: &[usize]) -> f64 {
        positions.iter().map(|&p| self.bandwidth[p]).sum()
    }

    /// Total bandwidth of all members.
    pub fn total_bandwidth(&self) -> f64 {
        self.bandwidth.iter().sum()
    }
}

/// The Goldilocks scheduler for asymmetric topologies and heterogeneous
/// servers (Section IV). On a symmetric, failure-free topology it reduces to
/// the Section III behaviour.
#[derive(Clone, Debug, Default)]
pub struct GoldilocksAsym {
    /// Algorithm configuration.
    pub config: GoldilocksConfig,
    /// Epoch-reusable container-graph cache (byte-identical to fresh builds).
    graph_cache: ContainerGraphCache,
}

impl GoldilocksAsym {
    /// Creates the policy with the paper's configuration.
    pub fn new() -> Self {
        GoldilocksAsym::default()
    }

    /// Creates the policy with a custom configuration.
    pub fn with_config(config: GoldilocksConfig) -> Self {
        GoldilocksAsym {
            config,
            graph_cache: ContainerGraphCache::new(),
        }
    }

    /// Builds the Virtual Clusters via recursive bisection against the
    /// *average* healthy-server capacity (Section IV-A stop rule).
    fn build_clusters(
        &mut self,
        workload: &Workload,
        tree: &DcTree,
    ) -> Result<Vec<VirtualCluster>, PlaceError> {
        let mean = self.config.cap_resources(&tree.mean_server_resources());
        let cap_weight = VertexWeight::new(mean.as_array().to_vec());
        let graph = self
            .graph_cache
            .build(workload, self.config.anti_affinity_weight)
            .map_err(|e| PlaceError::Infeasible {
                reason: format!("container graph: {e}"),
            })?;
        let groups =
            crate::grouping::partition_into_groups(graph, &cap_weight, &self.config.bisect)?;
        Ok(groups
            .into_iter()
            .map(|members| {
                let bandwidth = members
                    .iter()
                    .map(|&c| {
                        workload.container_bandwidth_mbps(goldilocks_workload::ContainerId(c))
                    })
                    .collect();
                VirtualCluster { members, bandwidth }
            })
            .collect())
    }
}

/// Greedy fill of a cluster's members onto the healthy servers under
/// `subtree`, against `tracker` state with a PEE cap. Returns positions (into
/// `vc.members`) that fit, and the server for each.
fn max_component_a(
    vc: &VirtualCluster,
    workload: &Workload,
    tree: &DcTree,
    tracker: &LoadTracker<'_>,
    subtree: NodeId,
    config: &GoldilocksConfig,
) -> Vec<(usize, ServerId)> {
    let servers: Vec<ServerId> = tree
        .servers_under(subtree)
        .into_iter()
        .filter(|s| !tree.server(*s).failed)
        .collect();
    let mut local = tracker.clone();
    let mut placed = Vec::new();
    for (pos, &c) in vc.members.iter().enumerate() {
        let demand = workload.containers[c].demand;
        for &s in &servers {
            let cap = config.cap_resources(&tree.server(s).resources);
            if local.fits_capped(s, &demand, &cap) {
                local.add(s, demand);
                placed.push((pos, s));
                break;
            }
        }
    }
    placed
}

impl Placer for GoldilocksAsym {
    fn name(&self) -> &str {
        "Goldilocks-Asym"
    }

    fn place(&mut self, workload: &Workload, tree: &DcTree) -> Result<Placement, PlaceError> {
        if tree.healthy_servers().is_empty() {
            return Err(PlaceError::Infeasible {
                reason: "no healthy servers".into(),
            });
        }
        if workload.is_empty() {
            return Ok(Placement::unplaced(0));
        }

        let clusters = self.build_clusters(workload, tree)?;
        // Bandwidth reservations are tracked on a private copy of the tree.
        let mut net = tree.clone();
        net.clear_reservations();
        let mut tracker = LoadTracker::new(tree);
        let mut placement = Placement::unplaced(workload.len());

        // Conservative Eq. (5) term: bandwidth of every unplaced group.
        let mut pending: std::collections::VecDeque<VirtualCluster> =
            clusters.into_iter().collect();
        let mut unplaced_bw: f64 = pending.iter().map(VirtualCluster::total_bandwidth).sum();
        // Bandwidth of already-placed containers, per server (to compute the
        // "outside the subtree" term cheaply we track the total and per-
        // subtree sums via the placement itself).
        let mut placed_bw_total = 0.0f64;
        let mut placed_bw_by_server: Vec<f64> = vec![0.0; tree.server_count()];

        let subtrees = net.subtrees_smallest_first();
        let mut spill_guard = 0usize;
        let spill_limit = workload.len() * 4 + 16;

        while let Some(vc) = pending.pop_front() {
            spill_guard += 1;
            if spill_guard > spill_limit {
                return Err(PlaceError::Infeasible {
                    reason: "virtual-cluster placement did not converge".into(),
                });
            }
            unplaced_bw -= vc.total_bandwidth();

            // Try to host the entire group on the smallest left-most subtree.
            let mut committed = false;
            let mut best_partial: Option<(NodeId, Vec<(usize, ServerId)>)> = None;
            for &st in &subtrees {
                let fit = max_component_a(&vc, workload, tree, &tracker, st, &self.config);
                if fit.is_empty() {
                    continue;
                }
                // Placed containers outside this subtree.
                let inside: std::collections::BTreeSet<usize> =
                    net.servers_under(st).into_iter().map(|s| s.0).collect();
                let placed_outside_bw = placed_bw_total
                    - placed_bw_by_server
                        .iter()
                        .enumerate()
                        .filter(|(s, _)| inside.contains(s))
                        .map(|(_, b)| *b)
                        .sum::<f64>();
                let inter_term = placed_outside_bw + unplaced_bw;

                if fit.len() == vc.members.len() {
                    let a_positions: Vec<usize> = fit.iter().map(|(p, _)| *p).collect();
                    let required = vc.bandwidth_of(&a_positions).min(inter_term);
                    if required <= net.residual_mbps(st) + 1e-9 {
                        // Commit the whole group here.
                        net.reserve_mbps(st, required)
                            .map_err(|e| PlaceError::Infeasible {
                                reason: format!("bandwidth reservation: {e}"),
                            })?;
                        for &(pos, s) in &fit {
                            let c = vc.members[pos];
                            tracker.add(s, workload.containers[c].demand);
                            placement.assignment[c] = Some(s);
                            placed_bw_by_server[s.0] += vc.bandwidth[pos];
                            placed_bw_total += vc.bandwidth[pos];
                        }
                        committed = true;
                        break;
                    }
                } else if best_partial
                    .as_ref()
                    .is_none_or(|(_, prev)| fit.len() > prev.len())
                {
                    // Trim component a until the Eq. (4) reservation fits the
                    // residual bandwidth.
                    let mut fit = fit;
                    loop {
                        if fit.is_empty() {
                            break;
                        }
                        let a_positions: Vec<usize> = fit.iter().map(|(p, _)| *p).collect();
                        let b_bw = vc.total_bandwidth() - vc.bandwidth_of(&a_positions);
                        let required = vc.bandwidth_of(&a_positions).min(b_bw + inter_term);
                        if required <= net.residual_mbps(st) + 1e-9 {
                            break;
                        }
                        fit.pop();
                    }
                    if !fit.is_empty() {
                        best_partial = Some((st, fit));
                    }
                }
            }
            if committed {
                continue;
            }

            // Split: commit the best component a, re-queue component b.
            let (st, fit) = best_partial.ok_or_else(|| PlaceError::Unplaceable {
                container: vc.members.first().copied().unwrap_or(0),
                reason: "no subtree has capacity or bandwidth for this group".into(),
            })?;
            let a_positions: Vec<usize> = fit.iter().map(|(p, _)| *p).collect();
            let inside: std::collections::BTreeSet<usize> =
                net.servers_under(st).into_iter().map(|s| s.0).collect();
            let placed_outside_bw = placed_bw_total
                - placed_bw_by_server
                    .iter()
                    .enumerate()
                    .filter(|(s, _)| inside.contains(s))
                    .map(|(_, b)| *b)
                    .sum::<f64>();
            let b_bw = vc.total_bandwidth() - vc.bandwidth_of(&a_positions);
            let required = vc
                .bandwidth_of(&a_positions)
                .min(b_bw + placed_outside_bw + unplaced_bw);
            net.reserve_mbps(st, required)
                .map_err(|e| PlaceError::Infeasible {
                    reason: format!("bandwidth reservation: {e}"),
                })?;
            let placed_set: std::collections::BTreeSet<usize> =
                a_positions.iter().copied().collect();
            for &(pos, s) in &fit {
                let c = vc.members[pos];
                tracker.add(s, workload.containers[c].demand);
                placement.assignment[c] = Some(s);
                placed_bw_by_server[s.0] += vc.bandwidth[pos];
                placed_bw_total += vc.bandwidth[pos];
            }
            let rest = VirtualCluster {
                members: vc
                    .members
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !placed_set.contains(p))
                    .map(|(_, c)| *c)
                    .collect(),
                bandwidth: vc
                    .bandwidth
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| !placed_set.contains(p))
                    .map(|(_, b)| *b)
                    .collect(),
            };
            unplaced_bw += rest.total_bandwidth();
            pending.push_back(rest);
        }

        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldilocks_topology::builders::{fat_tree, testbed_16};
    use goldilocks_topology::Resources;
    use goldilocks_workload::generators::twitter_caching;

    #[test]
    fn symmetric_case_places_everything() {
        let tree = testbed_16();
        let w = twitter_caching(64, 5);
        let mut g = GoldilocksAsym::new();
        let p = g.place(&w, &tree).unwrap();
        assert!(p.is_complete());
        for u in p.server_cpu_utilizations(&w, &tree) {
            assert!(u <= 0.70 + 1e-9, "PEE violated: {u}");
        }
    }

    #[test]
    fn heterogeneous_servers_still_place() {
        let mut tree = testbed_16();
        // Halve the capacity of four servers (legacy equipment).
        for s in 0..4 {
            tree.set_server_resources(ServerId(s), Resources::new(1600.0, 32.0, 500.0));
        }
        let w = twitter_caching(64, 6);
        let mut g = GoldilocksAsym::new();
        let p = g.place(&w, &tree).unwrap();
        assert!(p.is_complete());
        // No server, big or small, exceeds its own CPU PEE cap.
        for (s, u) in p.server_cpu_utilizations(&w, &tree).iter().enumerate() {
            assert!(*u <= 0.70 + 1e-9, "server {s} at {u}");
        }
    }

    #[test]
    fn failed_servers_avoided() {
        let mut tree = testbed_16();
        for s in 0..8 {
            tree.fail_server(ServerId(s));
        }
        let w = twitter_caching(32, 7);
        let mut g = GoldilocksAsym::new();
        let p = g.place(&w, &tree).unwrap();
        assert!(p.is_complete());
        assert!(p.assignment.iter().flatten().all(|s| s.0 >= 8));
    }

    #[test]
    fn degraded_uplink_forces_split_or_elsewhere() {
        // A fat-tree where the first rack's uplink is nearly dead: a chatty
        // group whose traffic exceeds the degraded uplink must not be placed
        // entirely behind it *with* external traffic pending.
        let mut tree = fat_tree(4, Resources::new(400.0, 64.0, 4000.0), 4000.0);
        let first_rack = tree.subtrees_smallest_first()[0];
        tree.degrade_uplink(first_rack, 0.001); // 8 Mbps left
        let w = twitter_caching(40, 8);
        let mut g = GoldilocksAsym::new();
        let p = g.place(&w, &tree).unwrap();
        assert!(p.is_complete());
    }

    #[test]
    fn groups_prefer_small_subtrees() {
        let tree = fat_tree(4, Resources::new(400.0, 64.0, 4000.0), 4000.0);
        // One tight clique that fits a single server: it must land on one.
        let mut w = Workload::new();
        for _ in 0..4 {
            w.add_container("c", Resources::new(50.0, 4.0, 20.0), None);
        }
        for i in 0..4usize {
            for j in i + 1..4 {
                w.add_flow(
                    goldilocks_workload::ContainerId(i),
                    goldilocks_workload::ContainerId(j),
                    50,
                    2.0,
                );
            }
        }
        let mut g = GoldilocksAsym::new();
        let p = g.place(&w, &tree).unwrap();
        let servers: std::collections::BTreeSet<_> = p.assignment.iter().flatten().collect();
        assert_eq!(servers.len(), 1, "clique should occupy one server");
    }

    #[test]
    fn empty_workload_ok() {
        let tree = testbed_16();
        let mut g = GoldilocksAsym::new();
        let p = g.place(&Workload::new(), &tree).unwrap();
        assert_eq!(p.assignment.len(), 0);
    }

    #[test]
    fn overload_is_an_error() {
        let tree = goldilocks_topology::builders::single_rack(
            2,
            Resources::new(100.0, 10.0, 100.0),
            100.0,
        );
        let mut w = Workload::new();
        for _ in 0..8 {
            w.add_container("c", Resources::new(40.0, 1.0, 1.0), None);
        }
        let err = GoldilocksAsym::new().place(&w, &tree).unwrap_err();
        assert!(matches!(
            err,
            PlaceError::Infeasible { .. } | PlaceError::Unplaceable { .. }
        ));
    }
}
