//! The capacity graph (Section III-A, Fig. 4b).
//!
//! Vertices are servers with ⟨CPU, memory, network⟩ capacity; edge weights
//! are shortest-path lengths (link counts) between server pairs in the
//! topology. Recursively bipartitioning this graph with the *max*-cut
//! objective peels off topology substructures (racks, pods) automatically,
//! because inter-substructure paths are the longest.

use goldilocks_partition::{Graph, GraphBuilder, PartitionError, VertexWeight};
use goldilocks_topology::{DcTree, ServerId};

/// Builds the capacity graph of `tree` over its healthy servers.
///
/// Returns the graph plus the server id of each vertex (`mapping[v]`).
/// Because path length is symmetric and dense, the graph is complete over
/// servers; for large topologies prefer the tree queries directly — this
/// graph is quadratic and intended for topologies up to a few hundred
/// servers (the paper's Fig. 4 usage).
///
/// # Errors
///
/// Propagates [`PartitionError`] from graph construction (cannot happen for
/// a well-formed topology).
pub fn capacity_graph(tree: &DcTree) -> Result<(Graph, Vec<ServerId>), PartitionError> {
    let servers = tree.healthy_servers();
    let mut b = GraphBuilder::new(3);
    for &s in &servers {
        let r = tree.server(s).resources;
        b.add_vertex(VertexWeight::new(r.as_array().to_vec()));
    }
    for i in 0..servers.len() {
        for j in i + 1..servers.len() {
            let hops = tree.hop_distance(servers[i], servers[j]);
            b.add_edge(i, j, hops as i64);
        }
    }
    Ok((b.build()?, servers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldilocks_topology::builders::{fat_tree, testbed_16};

    #[test]
    fn testbed_capacity_graph() {
        let tree = testbed_16();
        let (g, mapping) = capacity_graph(&tree).unwrap();
        assert_eq!(g.vertex_count(), 16);
        assert_eq!(mapping.len(), 16);
        // Complete graph on 16 vertices.
        assert_eq!(g.edge_count(), 16 * 15 / 2);
        // Vertex weights carry the server capacity.
        assert_eq!(g.vertex_weight(0).0, vec![3200.0, 64.0, 1000.0]);
    }

    #[test]
    fn edge_weights_are_path_lengths() {
        let tree = fat_tree(4, goldilocks_topology::Resources::testbed_server(), 1000.0);
        let (g, mapping) = capacity_graph(&tree).unwrap();
        for v in 0..4 {
            for (u, w) in g.neighbors(v) {
                let hops = tree.hop_distance(mapping[v], mapping[u]);
                assert_eq!(w, hops as i64);
            }
        }
    }

    #[test]
    fn failed_servers_excluded() {
        let mut tree = testbed_16();
        tree.fail_server(ServerId(3));
        let (g, mapping) = capacity_graph(&tree).unwrap();
        assert_eq!(g.vertex_count(), 15);
        assert!(!mapping.contains(&ServerId(3)));
    }
}
