//! Configuration of the Goldilocks provisioning algorithm.

use goldilocks_partition::BisectConfig;
use serde::{Deserialize, Serialize};

/// Tunables for the Goldilocks placement policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GoldilocksConfig {
    /// The Peak-Energy-Efficiency packing target: server *CPU* is filled to
    /// at most this fraction of capacity (paper: 0.70). The PEE knee is a
    /// property of the CPU power curve, so memory and network use the
    /// separate `safety_cap` instead.
    pub pee_target: f64,
    /// Safety cap applied to the memory and network dimensions (default
    /// 0.90): packing them to 100 % leaves no room for page-cache spikes or
    /// traffic bursts, but they do not drive the power curve.
    pub safety_cap: f64,
    /// Negative edge weight magnitude inserted between replicas of the same
    /// service for fault-domain spreading (Section IV-C). Zero disables
    /// anti-affinity.
    pub anti_affinity_weight: i64,
    /// Multilevel partitioner settings.
    pub bisect: BisectConfig,
}

impl Default for GoldilocksConfig {
    fn default() -> Self {
        GoldilocksConfig {
            pee_target: 0.70,
            safety_cap: 0.90,
            anti_affinity_weight: 100_000,
            bisect: BisectConfig::default(),
        }
    }
}

impl GoldilocksConfig {
    /// The paper's experimental configuration (PEE 70 %).
    pub fn paper() -> Self {
        GoldilocksConfig::default()
    }

    /// The per-dimension capacity cap vector ⟨pee, safety, safety⟩ applied
    /// to a server's ⟨CPU, memory, network⟩ capacity.
    pub fn cap_resources(
        &self,
        capacity: &goldilocks_topology::Resources,
    ) -> goldilocks_topology::Resources {
        goldilocks_topology::Resources::new(
            capacity.cpu * self.pee_target,
            capacity.memory_gb * self.safety_cap,
            capacity.network_mbps * self.safety_cap,
        )
    }

    /// Returns a copy with a different PEE target — used by the ablation
    /// sweep over packing targets.
    ///
    /// # Panics
    ///
    /// Panics if `pee` is not in `(0, 1]`.
    pub fn with_pee_target(mut self, pee: f64) -> Self {
        assert!(pee > 0.0 && pee <= 1.0, "pee target {pee} out of (0,1]");
        self.pee_target = pee;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = GoldilocksConfig::paper();
        assert!((c.pee_target - 0.70).abs() < 1e-12);
        assert!(c.anti_affinity_weight > 0);
    }

    #[test]
    fn pee_override() {
        let c = GoldilocksConfig::default().with_pee_target(0.6);
        assert!((c.pee_target - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pee target")]
    fn invalid_pee_rejected() {
        let _ = GoldilocksConfig::default().with_pee_target(0.0);
    }
}
