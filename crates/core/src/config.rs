//! Configuration of the Goldilocks provisioning algorithm.

use goldilocks_partition::BisectConfig;
use serde::{Deserialize, Serialize};

/// Tunables for the Goldilocks placement policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GoldilocksConfig {
    /// The Peak-Energy-Efficiency packing target: server *CPU* is filled to
    /// at most this fraction of capacity (paper: 0.70). The PEE knee is a
    /// property of the CPU power curve, so memory and network use the
    /// separate `safety_cap` instead.
    pub pee_target: f64,
    /// Safety cap applied to the memory and network dimensions (default
    /// 0.90): packing them to 100 % leaves no room for page-cache spikes or
    /// traffic bursts, but they do not drive the power curve.
    pub safety_cap: f64,
    /// Negative edge weight magnitude inserted between replicas of the same
    /// service for fault-domain spreading (Section IV-C). Zero disables
    /// anti-affinity.
    pub anti_affinity_weight: i64,
    /// Multilevel partitioner settings.
    pub bisect: BisectConfig,
}

impl Default for GoldilocksConfig {
    fn default() -> Self {
        GoldilocksConfig {
            pee_target: 0.70,
            safety_cap: 0.90,
            anti_affinity_weight: 100_000,
            bisect: BisectConfig::default(),
        }
    }
}

impl GoldilocksConfig {
    /// The paper's experimental configuration (PEE 70 %).
    pub fn paper() -> Self {
        GoldilocksConfig::default()
    }

    /// The per-dimension capacity cap vector ⟨pee, safety, safety⟩ applied
    /// to a server's ⟨CPU, memory, network⟩ capacity.
    pub fn cap_resources(
        &self,
        capacity: &goldilocks_topology::Resources,
    ) -> goldilocks_topology::Resources {
        goldilocks_topology::Resources::new(
            capacity.cpu * self.pee_target,
            capacity.memory_gb * self.safety_cap,
            capacity.network_mbps * self.safety_cap,
        )
    }

    /// Returns a copy with a different PEE target — used by the ablation
    /// sweep over packing targets.
    ///
    /// # Panics
    ///
    /// Panics if `pee` is not in `(0, 1]`.
    pub fn with_pee_target(mut self, pee: f64) -> Self {
        assert!(pee > 0.0 && pee <= 1.0, "pee target {pee} out of (0,1]");
        self.pee_target = pee;
        self
    }

    /// Returns a copy with the parallel-execution knobs set — one
    /// `ParallelConfig` governs both the partitioner's branch forking and
    /// the simulator's sharded metering engine. Parallelism never changes a
    /// result bit (see the partition and metering determinism contracts), so
    /// this is purely a throughput knob.
    pub fn with_parallel(mut self, parallel: goldilocks_partition::ParallelConfig) -> Self {
        self.bisect.parallel = parallel;
        self
    }
}

/// Tunables for the placement-as-a-service daemon (`goldilocks-service`).
///
/// Everything is expressed in *virtual ticks* — the daemon's deterministic
/// clock — so a configuration replays identically under the soak harness
/// and in production-style wall-clock runs (where the embedder maps ticks
/// to real time).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Bounded admission-queue capacity. Once full, lower-priority arrivals
    /// are rejected with a retry-after hint and higher-priority arrivals
    /// evict the lowest-priority queued request (explicit `Shed`); the
    /// queue never grows past this bound.
    pub queue_capacity: usize,
    /// Bounded outbox (completion-notification) capacity. A slow consumer
    /// that stops draining it causes overflow outcomes to be dropped and
    /// counted — clients re-learn state via `Query` — rather than buffering
    /// without bound.
    pub outbox_capacity: usize,
    /// Maximum requests drained from the queue into one epoch batch.
    pub batch_max: usize,
    /// Virtual ticks per epoch; epoch `e` commits at tick `(e + 1) ×
    /// epoch_ticks`, which is the deadline horizon a queued request must
    /// survive to.
    pub epoch_ticks: u64,
    /// Token-bucket burst capacity (tokens).
    pub bucket_capacity: u64,
    /// Tokens refilled at each epoch boundary (sustained admission rate =
    /// `tokens_per_epoch / epoch_ticks` requests per tick).
    pub tokens_per_epoch: u64,
    /// Deadline budget assigned to requests that arrive without one.
    pub default_deadline_ticks: u64,
    /// A full `ClusterState` + service snapshot is journaled every this
    /// many committed epochs, bounding recovery replay.
    pub snapshot_every: u64,
    /// Per-client idempotency window: the daemon remembers the outcome of
    /// this many most-recent request ids per client, so a retry after a
    /// lost `Accepted` replays the recorded outcome instead of
    /// double-placing. The window rides the WAL (accept records + service
    /// snapshots) and therefore survives crashes.
    pub dedup_window: usize,
    /// Maximum distinct clients tracked in the dedup window; beyond it the
    /// longest-idle client's window is evicted.
    pub dedup_clients_max: usize,
    /// Placement tunables for the primary rung of the degradation ladder.
    pub gold: GoldilocksConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            outbox_capacity: 256,
            batch_max: 64,
            epoch_ticks: 1_000,
            bucket_capacity: 48,
            tokens_per_epoch: 32,
            default_deadline_ticks: 4_000,
            snapshot_every: 8,
            dedup_window: 256,
            dedup_clients_max: 512,
            gold: GoldilocksConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_defaults_are_bounded_and_sane() {
        let s = ServiceConfig::default();
        assert!(s.queue_capacity > 0 && s.outbox_capacity > 0);
        assert!(s.batch_max <= s.queue_capacity);
        assert!(s.tokens_per_epoch <= s.bucket_capacity);
        assert!(s.default_deadline_ticks >= s.epoch_ticks);
        assert!(s.dedup_window > 0 && s.dedup_clients_max > 0);
    }

    #[test]
    fn default_matches_paper() {
        let c = GoldilocksConfig::paper();
        assert!((c.pee_target - 0.70).abs() < 1e-12);
        assert!(c.anti_affinity_weight > 0);
    }

    #[test]
    fn pee_override() {
        let c = GoldilocksConfig::default().with_pee_target(0.6);
        assert!((c.pee_target - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pee target")]
    fn invalid_pee_rejected() {
        let _ = GoldilocksConfig::default().with_pee_target(0.0);
    }

    #[test]
    fn with_parallel_sets_both_knobs() {
        let p = goldilocks_partition::ParallelConfig::with_threads(8);
        let c = GoldilocksConfig::paper().with_parallel(p.clone());
        assert_eq!(c.bisect.parallel, p);
        assert_eq!(
            c.bisect.parallel.metering_chunk_flows,
            p.metering_chunk_flows
        );
    }
}
