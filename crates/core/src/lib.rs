//! # goldilocks-core
//!
//! The paper's primary contribution: the Goldilocks resource-provisioning
//! algorithm (ICDCS 2019).
//!
//! - [`Goldilocks`]: symmetric-topology placement (Section III) —
//!   recursive min-cut bisection of the container graph until every group
//!   fits one server at the Peak-Energy-Efficiency cap, then left-to-right
//!   assignment onto the topology so sibling groups share racks/pods.
//! - [`GoldilocksAsym`]: asymmetric topologies and heterogeneous servers
//!   (Section IV) — groups become Oktopus-style Virtual Clusters placed on
//!   the smallest left-most subtree with enough residual outbound bandwidth
//!   (Eq. 4/5), splitting into components when necessary.
//! - [`capacity_graph`]: the Section III-A capacity graph.
//! - Replica anti-affinity (Section IV-C) rides on negative container-graph
//!   edges, configured via [`GoldilocksConfig::anti_affinity_weight`].
//!
//! ## Example
//!
//! ```
//! use goldilocks_core::Goldilocks;
//! use goldilocks_placement::Placer;
//! use goldilocks_topology::builders::testbed_16;
//! use goldilocks_workload::generators::twitter_caching;
//!
//! let tree = testbed_16();
//! let workload = twitter_caching(64, 1);
//! let placement = Goldilocks::new().place(&workload, &tree)?;
//! // Every server's CPU stays at or below the 70 % PEE target.
//! assert!(placement
//!     .server_cpu_utilizations(&workload, &tree)
//!     .iter()
//!     .all(|u| *u <= 0.70 + 1e-9));
//! # Ok::<(), goldilocks_placement::PlaceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

mod capacity;
mod config;
mod goldilocks;
mod grouping;
mod incremental_placer;
mod vcluster;

pub use capacity::capacity_graph;
pub use config::{GoldilocksConfig, ServiceConfig};
pub use goldilocks::{Goldilocks, ProvisionDetails};
pub use grouping::partition_into_groups;
pub use incremental_placer::IncrementalGoldilocks;
pub use vcluster::{GoldilocksAsym, VirtualCluster};
