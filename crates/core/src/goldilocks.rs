//! The Goldilocks placement policy on symmetric topologies (Section III).
//!
//! 1. Build the container graph (vertex = demand, edge = flow count,
//!    negative edges between replicas).
//! 2. Recursively bisect it with min-cut until every group fits one server
//!    capped at the Peak-Energy-Efficiency utilization (Eq. 1–3).
//! 3. Assign leaf groups, in the partition tree's left-to-right order, to
//!    servers in the topology's left-to-right (DFS) order: sibling groups —
//!    the chattiest pairs — land in the same rack, their parents in the same
//!    pod, and so on. Unused servers stay off.

use goldilocks_partition::{PartitionTree, VertexWeight};
use goldilocks_placement::{PlaceError, Placement, Placer};
use goldilocks_topology::{DcTree, Resources, ServerId};
use goldilocks_workload::{ContainerGraphCache, GraphCacheStats, Workload};

use crate::config::GoldilocksConfig;

/// The Goldilocks scheduler (symmetric-topology algorithm of Section III-B).
#[derive(Clone, Debug, Default)]
pub struct Goldilocks {
    /// Algorithm configuration.
    pub config: GoldilocksConfig,
    /// Epoch-reusable container-graph cache: warm epochs refresh vertex
    /// weights in place or apply CSR deltas instead of rebuilding (byte-
    /// identical either way, so placements are unaffected).
    graph_cache: ContainerGraphCache,
}

/// Diagnostics from one placement run — the partition tree behind the
/// assignment (Fig. 7 renders these groups).
#[derive(Clone, Debug)]
pub struct ProvisionDetails {
    /// The recursive-bisection tree over containers.
    pub tree: PartitionTree,
    /// Server chosen for each leaf, parallel to `tree.leaves()`.
    pub group_servers: Vec<ServerId>,
    /// Per-container group index (leaf order).
    pub group_of_container: Vec<usize>,
}

impl Goldilocks {
    /// Creates the policy with the paper's configuration (PEE 70 %).
    pub fn new() -> Self {
        Goldilocks::default()
    }

    /// Creates the policy with a custom configuration.
    pub fn with_config(config: GoldilocksConfig) -> Self {
        Goldilocks {
            config,
            graph_cache: ContainerGraphCache::new(),
        }
    }

    /// Build-path counters of the container-graph cache (how many epochs hit
    /// the refresh/delta paths vs full rebuilds).
    pub fn graph_cache_stats(&self) -> GraphCacheStats {
        self.graph_cache.stats()
    }

    /// Runs placement and returns the partition tree alongside the
    /// assignment.
    ///
    /// # Errors
    ///
    /// See [`Placer::place`].
    pub fn place_with_details(
        &mut self,
        workload: &Workload,
        tree: &DcTree,
    ) -> Result<(Placement, ProvisionDetails), PlaceError> {
        let healthy = tree.healthy_servers();
        if healthy.is_empty() {
            return Err(PlaceError::Infeasible {
                reason: "no healthy servers".into(),
            });
        }
        if workload.is_empty() {
            return Ok((
                Placement::unplaced(0),
                ProvisionDetails {
                    tree: PartitionTree {
                        vertices: Vec::new(),
                        weight: VertexWeight::zeros(3),
                        children: Vec::new(),
                        depth: 0,
                    },
                    group_servers: Vec::new(),
                    group_of_container: Vec::new(),
                },
            ));
        }

        // The stop rule uses the smallest healthy capacity so every group is
        // guaranteed to fit any server it is assigned to.
        let min_cap = healthy
            .iter()
            .map(|s| tree.server(*s).resources)
            .fold(None::<Resources>, |acc, r| match acc {
                None => Some(r),
                Some(a) => Some(Resources::new(
                    a.cpu.min(r.cpu),
                    a.memory_gb.min(r.memory_gb),
                    a.network_mbps.min(r.network_mbps),
                )),
            })
            .ok_or_else(|| PlaceError::Infeasible {
                reason: "no healthy servers".to_string(),
            })?;
        let cap = self.config.cap_resources(&min_cap);
        let cap_weight = VertexWeight::new(cap.as_array().to_vec());

        let graph = self
            .graph_cache
            .build(workload, self.config.anti_affinity_weight)
            .map_err(|e| PlaceError::Infeasible {
                reason: format!("container graph: {e}"),
            })?;

        let groups =
            crate::grouping::partition_into_groups(graph, &cap_weight, &self.config.bisect)?;

        // Healthy servers in topology DFS order.
        let dfs: Vec<ServerId> = tree
            .servers_in_dfs_order()
            .into_iter()
            .filter(|s| !tree.server(*s).failed)
            .collect();

        if groups.len() > dfs.len() {
            return Err(PlaceError::Infeasible {
                reason: format!(
                    "{} container groups need {} servers but only {} are healthy",
                    groups.len(),
                    groups.len(),
                    dfs.len()
                ),
            });
        }

        let mut placement = Placement::unplaced(workload.len());
        let mut group_servers = Vec::with_capacity(groups.len());
        let mut group_of_container = vec![usize::MAX; workload.len()];
        let mut leaves = Vec::with_capacity(groups.len());
        let mut next_server = 0usize;
        for (g, group) in groups.iter().enumerate() {
            let weight = graph.subset_weight(group);
            // Find the next DFS server whose (individual) capped capacity
            // hosts this group — with homogeneous servers this is always the
            // immediate next one.
            let mut chosen = None;
            while next_server < dfs.len() {
                let s = dfs[next_server];
                next_server += 1;
                let scap = self.config.cap_resources(&tree.server(s).resources);
                let scap_w = VertexWeight::new(scap.as_array().to_vec());
                if weight.fits_within(&scap_w) {
                    chosen = Some(s);
                    break;
                }
            }
            let s = chosen.ok_or_else(|| PlaceError::Unplaceable {
                container: group.first().copied().unwrap_or(0),
                reason: "ran out of servers while assigning container groups".into(),
            })?;
            for &v in group {
                placement.assignment[v] = Some(s);
                group_of_container[v] = g;
            }
            group_servers.push(s);
            leaves.push(PartitionTree {
                vertices: group.clone(),
                weight,
                children: Vec::new(),
                depth: 1,
            });
        }

        let part_tree = PartitionTree {
            vertices: (0..workload.len()).collect(),
            weight: graph.total_vertex_weight(),
            children: leaves,
            depth: 0,
        };
        Ok((
            placement,
            ProvisionDetails {
                tree: part_tree,
                group_servers,
                group_of_container,
            },
        ))
    }
}

impl Placer for Goldilocks {
    fn name(&self) -> &str {
        "Goldilocks"
    }

    fn place(&mut self, workload: &Workload, tree: &DcTree) -> Result<Placement, PlaceError> {
        self.place_with_details(workload, tree).map(|(p, _)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldilocks_topology::builders::{single_rack, testbed_16};
    use goldilocks_workload::generators::twitter_caching;

    #[test]
    fn respects_pee_cap() {
        let tree = testbed_16();
        let w = twitter_caching(64, 1);
        let mut g = Goldilocks::new();
        let p = g.place(&w, &tree).unwrap();
        assert!(p.is_complete());
        for u in p.server_cpu_utilizations(&w, &tree) {
            assert!(u <= 0.70 + 1e-9, "server CPU above PEE: {u}");
        }
        for u in p.server_utilizations(&w, &tree) {
            assert!(u <= 0.90 + 1e-9, "server above safety cap: {u}");
        }
    }

    #[test]
    fn uses_fewer_servers_than_epvm_when_load_is_low() {
        use goldilocks_placement::EPvm;
        let tree = testbed_16();
        let w = twitter_caching(32, 2);
        let gold = Goldilocks::new().place(&w, &tree).unwrap();
        let epvm = EPvm::new().place(&w, &tree).unwrap();
        assert!(gold.active_server_count() < epvm.active_server_count());
    }

    #[test]
    fn chatty_pairs_stay_close() {
        // Two chatty cliques of 4 containers each; servers hold 4 each.
        let tree = single_rack(4, Resources::new(200.0, 32.0, 500.0), 500.0);
        let mut w = Workload::new();
        for _ in 0..8 {
            w.add_container("c", Resources::new(33.0, 4.0, 24.0), None);
        }
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    w.add_flow(
                        goldilocks_workload::ContainerId(base + i),
                        goldilocks_workload::ContainerId(base + j),
                        100,
                        1.0,
                    );
                }
            }
        }
        let mut g = Goldilocks::new();
        let (p, details) = g.place_with_details(&w, &tree).unwrap();
        assert!(p.is_complete());
        // Each clique must land on a single server.
        for base in [0usize, 4] {
            let s = p.assignment[base].unwrap();
            for i in 1..4 {
                assert_eq!(p.assignment[base + i], Some(s), "clique split");
            }
        }
        assert_eq!(details.tree.leaf_count(), 2);
    }

    #[test]
    fn replicas_split_across_servers() {
        let tree = single_rack(4, Resources::new(200.0, 32.0, 500.0), 500.0);
        let mut w = Workload::new();
        // Two replicas + 6 fillers; replicas are chatty with the fillers but
        // anti-affine with each other.
        for i in 0..8 {
            let rs = if i < 2 { Some(7) } else { None };
            w.add_container("c", Resources::new(40.0, 4.0, 24.0), rs);
        }
        for i in 2..8 {
            w.add_flow(
                goldilocks_workload::ContainerId(0),
                goldilocks_workload::ContainerId(i),
                10,
                1.0,
            );
            w.add_flow(
                goldilocks_workload::ContainerId(1),
                goldilocks_workload::ContainerId(i),
                10,
                1.0,
            );
        }
        let mut g = Goldilocks::new();
        let p = g.place(&w, &tree).unwrap();
        assert_ne!(
            p.assignment[0], p.assignment[1],
            "replicas must land on different fault domains"
        );
    }

    #[test]
    fn details_group_mapping_is_consistent() {
        let tree = testbed_16();
        let w = twitter_caching(48, 3);
        let mut g = Goldilocks::new();
        let (p, d) = g.place_with_details(&w, &tree).unwrap();
        for (c, &grp) in d.group_of_container.iter().enumerate() {
            assert!(grp < d.group_servers.len());
            assert_eq!(p.assignment[c], Some(d.group_servers[grp]));
        }
    }

    #[test]
    fn empty_workload_is_fine() {
        let tree = testbed_16();
        let w = Workload::new();
        let mut g = Goldilocks::new();
        let p = g.place(&w, &tree).unwrap();
        assert_eq!(p.assignment.len(), 0);
    }

    #[test]
    fn too_much_load_errors() {
        let tree = single_rack(2, Resources::new(100.0, 10.0, 100.0), 100.0);
        let mut w = Workload::new();
        for _ in 0..8 {
            w.add_container("c", Resources::new(40.0, 1.0, 1.0), None);
        }
        // 320 % CPU demand vs 2 servers × 70 % = 140 %.
        let err = Goldilocks::new().place(&w, &tree).unwrap_err();
        assert!(matches!(
            err,
            PlaceError::Infeasible { .. } | PlaceError::Unplaceable { .. }
        ));
    }

    #[test]
    fn lower_pee_uses_more_servers() {
        let tree = testbed_16();
        let w = twitter_caching(96, 4);
        let p70 = Goldilocks::new().place(&w, &tree).unwrap();
        let p50 = Goldilocks::with_config(GoldilocksConfig::default().with_pee_target(0.5))
            .place(&w, &tree)
            .unwrap();
        assert!(p50.active_server_count() >= p70.active_server_count());
    }
}
