//! Demand-proportional container grouping.
//!
//! Strict recursive bisection stops only at power-of-two-ish leaf counts:
//! splitting until every group fits yields 8 or 16 groups, never 9. The
//! paper's Fig. 7/9 show group counts tracking the actual demand (9 servers
//! for ~6.3 servers' worth of load at the 70 % cap), which METIS achieves by
//! splitting with proportional target fractions. We reproduce that: compute
//! `k = ceil(worst-dimension demand / cap)` and run the k-way partitioner
//! (whose recursive splits use proportional fractions), then locally
//! re-bisect any group that still overflows the cap.

use goldilocks_partition::{
    partition_kway_in, recursive_bisect_in, BisectConfig, Graph, PartitionWorkspace, VertexWeight,
};
use goldilocks_placement::PlaceError;

/// Partitions `graph` into locality-ordered groups whose aggregate weight
/// fits `cap` per group. Consecutive groups are partition-tree siblings, so
/// assigning them to consecutive servers preserves locality.
///
/// # Errors
///
/// Returns [`PlaceError::Infeasible`] when a single vertex exceeds the cap
/// or the partitioner fails.
pub fn partition_into_groups(
    graph: &Graph,
    cap: &VertexWeight,
    config: &BisectConfig,
) -> Result<Vec<Vec<usize>>, PlaceError> {
    let m = graph.vertex_count();
    if m == 0 {
        return Ok(Vec::new());
    }
    let total = graph.total_vertex_weight();
    let mut k = 1usize;
    for d in 0..cap.dims() {
        let c = cap.component(d);
        if c <= 0.0 {
            if total.component(d) > 0.0 {
                return Err(PlaceError::Infeasible {
                    reason: format!("capacity dimension {d} is zero"),
                });
            }
            continue;
        }
        k = k.max((total.component(d) / c).ceil() as usize);
    }
    let k = k.clamp(1, m);

    // One workspace serves the k-way pass and every local re-split below.
    let mut ws = PartitionWorkspace::new();
    let labels =
        partition_kway_in(graph, k, config, &mut ws).map_err(|e| PlaceError::Infeasible {
            reason: format!("k-way partitioning: {e}"),
        })?;
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (v, &g) in labels.iter().enumerate() {
        groups[g].push(v);
    }

    // Proportional splitting balances in expectation; tolerance can leave a
    // group slightly over the cap. First repair overflows by shifting the
    // smallest vertices into neighboring groups with headroom (adjacent
    // groups are partition-tree siblings, so the locality damage is small
    // and the group count — hence server count — stays at k).
    repair_overflows(graph, cap, &mut groups);

    // Any group still over the cap is re-bisected locally (its pieces stay
    // adjacent in the output, preserving sibling locality).
    let mut out = Vec::with_capacity(k);
    for group in groups {
        if group.is_empty() {
            continue;
        }
        let w = graph.subset_weight(&group);
        if w.fits_within(cap) {
            out.push(group);
            continue;
        }
        // `repair_overflows` may have appended out-of-order vertices, so the
        // group is not necessarily sorted; `subgraph_in` still yields sorted
        // CSR rows and maps subgraph vertex `i` back to `group[i]`.
        let sub = graph.subgraph_in(&group, &mut ws);
        let tree =
            recursive_bisect_in(&sub, |gw| gw.fits_within(cap), config, &mut ws).map_err(|e| {
                PlaceError::Infeasible {
                    reason: format!("group re-split: {e}"),
                }
            })?;
        for leaf in tree.leaves() {
            out.push(leaf.vertices.iter().map(|&v| group[v]).collect());
        }
    }
    Ok(out)
}

/// Moves vertices out of over-cap groups into groups with headroom,
/// preferring adjacent groups (tree siblings). Bounded at one pass over the
/// vertex population; groups that cannot be repaired are left for re-split.
fn repair_overflows(graph: &Graph, cap: &VertexWeight, groups: &mut [Vec<usize>]) {
    let k = groups.len();
    if k < 2 {
        return;
    }
    let mut weights: Vec<VertexWeight> = groups.iter().map(|g| graph.subset_weight(g)).collect();
    let mut budget = graph.vertex_count();
    for g in 0..k {
        while !weights[g].fits_within(cap) && budget > 0 {
            budget -= 1;
            // Smallest vertex of the group (least locality damage, most
            // likely to fit elsewhere).
            let Some((pos, &v)) = groups[g].iter().enumerate().min_by(|(_, a), (_, b)| {
                let ra = graph.vertex_weight(**a).max_ratio(cap);
                let rb = graph.vertex_weight(**b).max_ratio(cap);
                ra.total_cmp(&rb)
            }) else {
                break;
            };
            let vw = graph.vertex_weight(v);
            // Candidate targets: neighbors first, then everything else.
            let mut candidates: Vec<usize> = Vec::with_capacity(k - 1);
            if g > 0 {
                candidates.push(g - 1);
            }
            if g + 1 < k {
                candidates.push(g + 1);
            }
            for t in 0..k {
                if t != g && !candidates.contains(&t) {
                    candidates.push(t);
                }
            }
            let target = candidates.into_iter().find(|&t| {
                let mut wt = weights[t].clone();
                wt.add_assign(&vw);
                wt.fits_within(cap)
            });
            match target {
                Some(t) => {
                    groups[g].remove(pos);
                    weights[g].sub_assign(&vw);
                    groups[t].push(v);
                    weights[t].add_assign(&vw);
                }
                None => break, // no headroom anywhere; re-split will handle it
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goldilocks_partition::GraphBuilder;

    fn uniform_graph(n: usize, weight: f64) -> Graph {
        let mut b = GraphBuilder::new(1);
        for _ in 0..n {
            b.add_vertex(VertexWeight::new([weight]));
        }
        for v in 0..n - 1 {
            b.add_edge(v, v + 1, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn group_count_tracks_demand_not_powers_of_two() {
        // 18 unit vertices, cap 2.0 → exactly 9 groups (not 16).
        let g = uniform_graph(18, 1.0);
        let cap = VertexWeight::new([2.0]);
        let groups = partition_into_groups(&g, &cap, &BisectConfig::default()).unwrap();
        assert_eq!(
            groups.len(),
            9,
            "sizes: {:?}",
            groups.iter().map(Vec::len).collect::<Vec<_>>()
        );
        for gr in &groups {
            assert!(g.subset_weight(gr).fits_within(&cap));
        }
    }

    #[test]
    fn all_vertices_covered_once() {
        let g = uniform_graph(25, 1.0);
        let cap = VertexWeight::new([4.0]);
        let groups = partition_into_groups(&g, &cap, &BisectConfig::default()).unwrap();
        let mut seen = [false; 25];
        for gr in &groups {
            for &v in gr {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
        assert_eq!(groups.len(), 7, "ceil(25/4) = 7");
    }

    #[test]
    fn single_group_when_everything_fits() {
        let g = uniform_graph(5, 1.0);
        let cap = VertexWeight::new([10.0]);
        let groups = partition_into_groups(&g, &cap, &BisectConfig::default()).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 5);
    }

    #[test]
    fn oversized_vertex_is_infeasible() {
        let g = uniform_graph(3, 5.0);
        let cap = VertexWeight::new([2.0]);
        let err = partition_into_groups(&g, &cap, &BisectConfig::default()).unwrap_err();
        assert!(matches!(err, PlaceError::Infeasible { .. }));
    }

    #[test]
    fn empty_graph_gives_no_groups() {
        let g = GraphBuilder::new(1).build().unwrap();
        let cap = VertexWeight::new([1.0]);
        let groups = partition_into_groups(&g, &cap, &BisectConfig::default()).unwrap();
        assert!(groups.is_empty());
    }
}
