//! Offline stub of `crossbeam` exposing the `thread::scope` surface the
//! workspace uses, implemented on `std::thread::scope`. The signatures match
//! crossbeam 0.8 — `scope` returns a `Result`, spawn closures receive a
//! `&Scope` — so code written against this stub compiles unchanged against
//! the real crate in a networked build.

pub mod thread {
    /// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
    ///
    /// Wraps `std::thread::Scope`; the wrapper is what spawn closures
    /// receive, so nested spawns work exactly as with the real crate.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a `&Scope` (for
        /// nested spawns), matching crossbeam 0.8's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread, mirroring
    /// `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (`Err` holds
        /// the panic payload if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning scoped threads; all threads are joined
    /// before `scope` returns. Matches crossbeam 0.8's calling convention.
    ///
    /// # Errors
    ///
    /// Returns `Err` only when the scope closure itself panics across the
    /// unwind boundary inside `std::thread::scope` (never here — callers
    /// should still `.expect()` as with the real crate).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_spawns_and_joins() {
            let data = [1, 2, 3, 4];
            let sum = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("no panic"))
                    .sum::<i32>()
            })
            .expect("scope ok");
            assert_eq!(sum, 10);
        }

        #[test]
        fn nested_spawn_works() {
            let v = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7).join().expect("inner"))
                    .join()
                    .expect("outer")
            })
            .expect("scope ok");
            assert_eq!(v, 7);
        }
    }
}
