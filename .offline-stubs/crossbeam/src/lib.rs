//! Offline stub of `crossbeam` (unused by workspace code; exists so
//! dependency resolution succeeds). `scope` delegates to `std::thread`.

pub mod thread {
    pub use std::thread::scope;
}
