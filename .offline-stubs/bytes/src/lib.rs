//! Offline stub of `bytes` (unused by workspace code).
