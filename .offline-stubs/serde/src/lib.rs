//! Offline stub of `serde`: the trait names exist (blanket-implemented) and
//! the derive macros expand to nothing. Nothing actually serializes.

pub use serde_stub_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub trait Serializer {}
pub trait Deserializer<'de> {}

pub mod de {
    pub use crate::Deserialize;
}
pub mod ser {
    pub use crate::Serialize;
}
