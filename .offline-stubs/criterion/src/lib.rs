//! Offline stub of `criterion`: enough surface for the bench targets to
//! resolve and type-check (`cargo clippy --all-targets` compiles benches
//! even though `cargo bench` is never run offline). Every "measurement"
//! just invokes the closure once so the code under bench still compiles
//! against realistic bounds.

// Not a unit struct: downstream code calls `Criterion::default()`, which
// clippy would flag as `default_constructed_unit_structs` against a unit
// stub even though the real Criterion has fields.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, _name: S) -> BenchmarkGroup {
        BenchmarkGroup
    }

    pub fn bench_function<F>(&mut self, _id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        f(&mut Bencher);
        self
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn bench_function<F>(&mut self, _id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, _id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
    }
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<A, B>(_a: A, _b: B) -> Self {
        BenchmarkId
    }
    pub fn from_parameter<A>(_a: A) -> Self {
        BenchmarkId
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)*
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
