//! Offline stub of `criterion`: enough surface for the bench targets to
//! resolve (they are only compiled by `cargo bench`, which is not run
//! offline; this keeps `cargo metadata` and dev-dep resolution happy).

pub struct Criterion;

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<A, B>(_a: A, _b: B) -> Self {
        BenchmarkId
    }
    pub fn from_parameter<A>(_a: A) -> Self {
        BenchmarkId
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! criterion_main {
    ($($tt:tt)*) => {
        fn main() {}
    };
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
