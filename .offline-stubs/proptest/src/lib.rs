//! Offline stub of `proptest`: a miniature property-testing runner with the
//! combinator surface this workspace uses. Deterministic per test case, no
//! shrinking — failures report the raw failing input via the panic message.

/// SplitMix64 case generator.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5bf0_3635,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why one generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — skipped, not a failure.
    Reject(String),
    /// The case failed.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, reason }
    }

    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        reason: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f, reason }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe view used by [`prop_oneof!`] and [`BoxedStrategy`].
pub trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// Always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_oneof!` support: uniformly picks one arm per case.
pub struct Union<V> {
    pub arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
strategy_for_float_range!(f32, f64);

macro_rules! strategy_for_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_for_tuple!(A.0);
strategy_for_tuple!(A.0, B.1);
strategy_for_tuple!(A.0, B.1, C.2);
strategy_for_tuple!(A.0, B.1, C.2, D.3);
strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`].
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_cfg ($cfg); $($rest)* }
    };
    (@with_cfg ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..(__cfg.cases as u64) {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __result {
                        Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {__case} failed: {msg}")
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_cfg ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $( $crate::Strategy::boxed($arm) ),+
        ])
    };
}
