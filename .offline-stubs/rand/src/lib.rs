//! Offline stub of `rand` 0.8: a real, deterministic PRNG (SplitMix64) with
//! the subset of the API this workspace uses. Streams do NOT match the
//! upstream `StdRng`; only statistical behavior is comparable.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values uniformly sampleable from the full bit stream (`rng.gen()`).
pub trait Uniformable {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniformable for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniformable for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Uniformable for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! uniformable_int {
    ($($t:ty),*) => {$(
        impl Uniformable for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
uniformable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Element types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                lo + <$t as Uniformable>::from_rng(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                lo + <$t as Uniformable>::from_rng(rng) * (hi - lo)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// A range argument to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing sampling API (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    fn gen<T: Uniformable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p}");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
