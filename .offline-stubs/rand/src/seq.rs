//! Slice sampling helpers (`shuffle`, `choose`).

use crate::{Rng, RngCore};

pub trait SliceRandom {
    type Item;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
