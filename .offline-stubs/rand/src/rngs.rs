//! The stub `StdRng`: SplitMix64 (Steele et al.), deterministic per seed.

use crate::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng {
            // One warm-up scramble so nearby seeds diverge immediately.
            state: state ^ 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Alias so `SmallRng` users compile too.
pub type SmallRng = StdRng;
