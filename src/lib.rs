//! # goldilocks
//!
//! A from-scratch Rust reproduction of **“Goldilocks: Adaptive Resource
//! Provisioning in Containerized Data Centers”** (Zhou, Bhuyan,
//! Ramakrishnan — ICDCS 2019).
//!
//! Goldilocks places containers on data-center servers by recursively
//! min-cut partitioning the *container graph* (vertex = ⟨CPU, memory,
//! network⟩ demand, edge = flow count) until every group fits one server at
//! the *Peak Energy Efficiency* utilization (~70 %), then maps sibling
//! groups onto neighboring racks. The result: the least total power **and**
//! the shortest task completion times of the five policies the paper
//! evaluates.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`partition`] | `goldilocks-partition` | multilevel min-cut graph partitioner (METIS substitute) |
//! | [`topology`] | `goldilocks-topology` | fat-tree / leaf-spine / testbed topologies, bandwidth ledger |
//! | [`power`] | `goldilocks-power` | PEE power curves, switch models, Table I / Figs. 1–3 math |
//! | [`workload`] | `goldilocks-workload` | Table II profiles, container graphs, Wikipedia/Azure/search traces |
//! | [`placement`] | `goldilocks-placement` | `Placer` trait + E-PVM, mPP, Borg, RC-Informed baselines |
//! | [`core`] | `goldilocks-core` | the Goldilocks algorithm (Sections III & IV) |
//! | [`cluster`] | `goldilocks-cluster` | CRIU migration model, overlay IPs, power gating |
//! | [`service`] | `goldilocks-service` | placement daemon: admission control, backpressure, WAL-backed serving |
//! | [`sim`] | `goldilocks-sim` | flow-level simulator, scenarios for Figs. 9/10/13 |
//!
//! ## Quickstart
//!
//! ```
//! use goldilocks::core::Goldilocks;
//! use goldilocks::placement::Placer;
//! use goldilocks::topology::builders::testbed_16;
//! use goldilocks::workload::generators::twitter_caching;
//!
//! let dc = testbed_16();                 // the paper's 16-server testbed
//! let workload = twitter_caching(64, 7); // front-ends + memcached shards
//! let placement = Goldilocks::new().place(&workload, &dc)?;
//! assert!(placement.is_complete());
//! # Ok::<(), goldilocks::placement::PlaceError>(())
//! ```
//!
//! Run `cargo run --release -p goldilocks-bench --bin fig09_wiki_testbed`
//! (and the other `fig*`/`tab*` binaries) to regenerate every table and
//! figure of the paper; see `EXPERIMENTS.md` for the index.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub use goldilocks_cluster as cluster;
pub use goldilocks_core as core;
pub use goldilocks_partition as partition;
pub use goldilocks_placement as placement;
pub use goldilocks_power as power;
pub use goldilocks_service as service;
pub use goldilocks_sim as sim;
pub use goldilocks_topology as topology;
pub use goldilocks_workload as workload;
