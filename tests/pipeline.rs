//! Cross-crate pipeline tests: the full workflow from workload generation
//! through partitioning, placement, migration planning and metering.

use goldilocks::cluster::{migration_plan, IpRegistry, MigrationModel, PowerGate};
use goldilocks::core::{capacity_graph, Goldilocks, GoldilocksAsym, GoldilocksConfig};
use goldilocks::partition::{partition_kway, BisectConfig};
use goldilocks::placement::{EPvm, Placer};
use goldilocks::sim::{meter, PowerConfig};
use goldilocks::topology::builders::{fat_tree, testbed_16};
use goldilocks::topology::{Resources, ServerId};
use goldilocks::workload::generators::{azure_mix, twitter_caching};
use goldilocks::workload::mstrace::{search_trace, SearchTraceConfig};

#[test]
fn end_to_end_epoch_with_migration_and_overlay() {
    let tree = testbed_16();
    let registry = IpRegistry::new();

    // Epoch 1: place at low load.
    let mut w1 = twitter_caching(80, 5);
    w1.scale_load(0.5);
    let mut gold = Goldilocks::new();
    let p1 = gold.place(&w1, &tree).expect("epoch 1 feasible");
    for (c, s) in p1.assignment.iter().enumerate() {
        registry.register(c, s.expect("placed")).expect("ip space");
    }
    let ips_before: Vec<_> = (0..w1.len()).map(|c| registry.app_ip(c).unwrap()).collect();

    // Epoch 2: load doubles; placement changes; migrations preserve app IPs.
    let mut w2 = twitter_caching(80, 5);
    w2.scale_load(1.0);
    let p2 = gold.place(&w2, &tree).expect("epoch 2 feasible");
    let plan = migration_plan(&p1, &p2);
    let cost = MigrationModel::default().plan_cost(&plan, &w2);
    assert_eq!(cost.count, plan.len());
    for m in &plan {
        registry.remap(m.container, m.to).expect("registered");
    }
    for (c, ip) in ips_before.iter().enumerate() {
        assert_eq!(
            registry.app_ip(c).as_ref(),
            Some(ip),
            "app IP must survive migration"
        );
    }

    // Power gate: servers without containers get turned off.
    let mut gate = PowerGate::all_on(tree.server_count());
    let active = p2.active_servers();
    let desired: Vec<bool> = (0..tree.server_count())
        .map(|s| active.contains(&ServerId(s)))
        .collect();
    gate.step(&desired, 60);
    assert_eq!(gate.ready_count(), active.len());

    // And metering sees only the active servers.
    let sample = meter(&p2, &w2, &tree, &PowerConfig::testbed());
    assert_eq!(sample.active_servers, active.len());
}

#[test]
fn capacity_graph_partition_recovers_racks() {
    // Partitioning the capacity graph with max-cut-like structure: with
    // hop-distance edge weights, a k-way min-cut over the *complement*
    // behaviour groups far-apart servers separately; the paper notes
    // substructures fall out of the recursion. Here we verify the capacity
    // graph is well-formed over a fat tree and k-way partitioning yields
    // balanced server groups.
    let tree = fat_tree(4, Resources::testbed_server(), 1000.0);
    let (graph, mapping) = capacity_graph(&tree).expect("capacity graph");
    assert_eq!(graph.vertex_count(), 16);
    let labels = partition_kway(&graph, 4, &BisectConfig::default()).expect("4 parts");
    let mut sizes = vec![0usize; 4];
    for &l in &labels {
        sizes[l] += 1;
    }
    assert_eq!(sizes, vec![4, 4, 4, 4]);
    assert_eq!(mapping.len(), 16);
}

#[test]
fn asymmetric_placement_handles_failures_and_heterogeneity() {
    let mut tree = testbed_16();
    // Two failed servers, two downgraded ones, one degraded rack uplink.
    tree.fail_server(ServerId(2));
    tree.fail_server(ServerId(9));
    tree.set_server_resources(ServerId(0), Resources::new(1600.0, 32.0, 500.0));
    tree.set_server_resources(ServerId(1), Resources::new(1600.0, 32.0, 500.0));
    let rack = tree.subtrees_smallest_first()[1];
    tree.degrade_uplink(rack, 0.25);

    let w = twitter_caching(64, 11);
    let mut asym = GoldilocksAsym::new();
    let p = asym
        .place(&w, &tree)
        .expect("asymmetric placement feasible");
    assert!(p.is_complete());
    // Failed servers host nothing.
    for s in p.assignment.iter().flatten() {
        assert!(s.0 != 2 && s.0 != 9);
    }
    // Downgraded servers respect their own (smaller) PEE cap.
    let utils = p.server_cpu_utilizations(&w, &tree);
    assert!(utils[0] <= 0.70 * (1600.0 / 1600.0) + 1e-9);
}

#[test]
fn search_trace_places_on_fat_tree() {
    // A scaled-down Fig. 13 pipeline: synthetic search trace onto a fat
    // tree, with both Goldilocks variants succeeding.
    let tree = fat_tree(4, Resources::new(4800.0, 768.0, 10_000.0), 10_000.0);
    let mut w = search_trace(&SearchTraceConfig {
        vertices: 80,
        ..SearchTraceConfig::default()
    });
    // Keep CPU below the 70 % cluster cap.
    let total = w.total_demand().cpu;
    let cap = tree.server_count() as f64 * 4800.0 * 0.5;
    w.scale_load(cap / total);
    let p = Goldilocks::new().place(&w, &tree).expect("symmetric");
    assert!(p.is_complete());
    let p2 = GoldilocksAsym::new().place(&w, &tree).expect("asymmetric");
    assert!(p2.is_complete());
}

#[test]
fn replica_anti_affinity_survives_the_full_pipeline() {
    let tree = testbed_16();
    let mut w = azure_mix(80, 13);
    // Calibrate to fit the testbed: CPU to 40 % of the cluster, memory and
    // network to testbed-plausible footprints (as the Fig. 10 scenario does).
    let total = w.total_demand().cpu;
    let cpu_scale = 16.0 * 3200.0 * 0.4 / total;
    for c in &mut w.containers {
        c.demand.cpu *= cpu_scale;
        c.demand.memory_gb = (c.demand.memory_gb * 0.1).max(0.2);
        c.demand.network_mbps *= 0.3;
    }
    let cfg = GoldilocksConfig::paper();
    let mut gold = Goldilocks::with_config(cfg);
    let (p, _) = gold.place_with_details(&w, &tree).expect("feasible");
    // Every 2-member replica set must land on two distinct servers.
    use std::collections::BTreeMap;
    let mut sets: BTreeMap<usize, Vec<ServerId>> = BTreeMap::new();
    for c in &w.containers {
        if let Some(rs) = c.replica_set {
            sets.entry(rs)
                .or_default()
                .push(p.assignment[c.id.0].expect("placed"));
        }
    }
    let mut split = 0;
    let mut together = 0;
    for servers in sets.values() {
        if servers.len() == 2 {
            if servers[0] == servers[1] {
                together += 1;
            } else {
                split += 1;
            }
        }
    }
    assert!(
        split >= together * 9,
        "anti-affinity too weak: {split} split vs {together} co-located"
    );
}

#[test]
fn epvm_and_goldilocks_agree_on_completeness() {
    // Sanity: both extreme policies place the same workload completely.
    let tree = testbed_16();
    let mut w = twitter_caching(96, 17);
    w.scale_load(0.8);
    let pe = EPvm::new().place(&w, &tree).expect("epvm");
    let pg = Goldilocks::new().place(&w, &tree).expect("goldilocks");
    assert!(pe.is_complete() && pg.is_complete());
    assert!(pg.active_server_count() <= pe.active_server_count());
}
