//! Integration tests asserting the paper's headline claims at reduced scale.
//!
//! These are the "does the reproduction reproduce?" tests: each encodes a
//! qualitative result from the evaluation section — who wins, in which
//! direction — on a scenario small enough for CI.

use goldilocks::sim::epoch::{run_lineup, run_policy, Policy};
use goldilocks::sim::scenarios::{azure_testbed_sized, largescale, wiki_testbed};
use goldilocks::sim::summary::{power_saving_vs, summarize, PolicySummary};

fn wiki_summaries() -> Vec<PolicySummary> {
    let scenario = wiki_testbed(20, 120, 42);
    run_lineup(&scenario)
        .expect("wiki scenario feasible")
        .iter()
        .map(summarize)
        .collect()
}

#[test]
fn epvm_keeps_every_server_active() {
    // Fig. 9(a)/13(a): "all the servers are active in E-PVM".
    let s = wiki_summaries();
    assert_eq!(s[0].policy, "E-PVM");
    assert_eq!(s[0].avg_active_servers, 16.0);
}

#[test]
fn goldilocks_saves_the_most_power_on_wiki() {
    // Fig. 9(b)/11(a): Goldilocks consumes the least power of all policies.
    let s = wiki_summaries();
    let gold = s.last().expect("lineup non-empty");
    assert_eq!(gold.policy, "Goldilocks");
    for other in &s[..s.len() - 1] {
        assert!(
            gold.avg_total_watts < other.avg_total_watts,
            "Goldilocks {:.0} W !< {} {:.0} W",
            gold.avg_total_watts,
            other.policy,
            other.avg_total_watts
        );
    }
    // And the saving vs E-PVM is substantial (paper: 22.7 %).
    let saving = power_saving_vs(gold, &s[0]);
    assert!(saving > 0.15, "saving only {saving}");
}

#[test]
fn goldilocks_has_the_shortest_tct_on_wiki() {
    // Fig. 9(c)/11(b): at least 2.56x shorter than any alternative (we
    // require > 1.5x at reduced scale).
    let s = wiki_summaries();
    let gold = s.last().expect("non-empty");
    for other in &s[..s.len() - 1] {
        assert!(
            other.avg_tct_ms > 1.5 * gold.avg_tct_ms,
            "{} TCT {:.2} not >> Goldilocks {:.2}",
            other.policy,
            other.avg_tct_ms,
            gold.avg_tct_ms
        );
    }
}

#[test]
fn goldilocks_has_the_best_energy_per_request() {
    // Fig. 9(d)/11(c): lowest energy per completed request.
    let s = wiki_summaries();
    let gold = s.last().expect("non-empty");
    for other in &s[..s.len() - 1] {
        assert!(
            gold.avg_energy_per_request_j < other.avg_energy_per_request_j,
            "{} beats Goldilocks on energy/request",
            other.policy
        );
    }
}

#[test]
fn packers_use_fewer_servers_than_goldilocks() {
    // Fig. 9(a): Borg and mPP pack tighter (95 % vs 70 %), so they run
    // fewer active servers than Goldilocks — yet consume more power.
    let s = wiki_summaries();
    let gold = s.last().expect("non-empty");
    let borg = s.iter().find(|x| x.policy == "Borg").expect("Borg present");
    let mpp = s.iter().find(|x| x.policy == "mPP").expect("mPP present");
    assert!(borg.avg_active_servers < gold.avg_active_servers);
    assert!(mpp.avg_active_servers < gold.avg_active_servers);
    assert!(borg.avg_total_watts > gold.avg_total_watts);
}

#[test]
fn azure_mix_goldilocks_wins_power_and_tct() {
    // Fig. 10/11: under the rich mix, Goldilocks still saves power vs
    // E-PVM and has the lowest TCT of the lineup.
    //
    // At 16-server testbed scale the power margin is only a few percent —
    // one server is 6.25 % of the fleet — and individual trace draws land
    // on either side of it, so asserting a single seed is a coin flip (the
    // old seed-42 / 100–150-container variant of this test was exactly
    // that). Instead, run the paper's container counts (149–221) over a
    // small seed panel and assert the direction by median / majority: the
    // statistics the figure is actually about.
    let seeds = [1u64, 5, 7, 42, 99];
    let mut savings = Vec::new();
    let mut power_wins = 0; // least power of the whole lineup
    let mut tct_wins = 0; // beats the E-PVM baseline on TCT
    for &seed in &seeds {
        let scenario = azure_testbed_sized(12, 149, 221, seed);
        let runs = run_lineup(&scenario).expect("azure scenario feasible");
        let s: Vec<PolicySummary> = runs.iter().map(summarize).collect();
        let gold = s.last().expect("non-empty");
        assert_eq!(gold.policy, "Goldilocks");
        // Consolidation below E-PVM's always-on fleet is structural, not
        // statistical: it must hold on every draw.
        assert!(
            gold.avg_active_servers < s[0].avg_active_servers,
            "seed {seed}: Goldilocks failed to consolidate ({} vs {})",
            gold.avg_active_servers,
            s[0].avg_active_servers
        );
        savings.push(power_saving_vs(gold, &s[0]));
        if s[..s.len() - 1]
            .iter()
            .all(|o| gold.avg_total_watts < o.avg_total_watts)
        {
            power_wins += 1;
        }
        if gold.avg_tct_ms < s[0].avg_tct_ms {
            tct_wins += 1;
        }
    }
    savings.sort_by(f64::total_cmp);
    let median = savings[seeds.len() / 2];
    assert!(
        median > 0.0,
        "median Goldilocks azure saving {median} (panel: {savings:?})"
    );
    assert!(
        2 * power_wins > seeds.len(),
        "Goldilocks drew the least power on only {power_wins}/{} seeds",
        seeds.len()
    );
    assert!(
        2 * tct_wins > seeds.len(),
        "Goldilocks beat E-PVM TCT on only {tct_wins}/{} seeds",
        seeds.len()
    );
}

#[test]
fn largescale_shape_matches_fig13() {
    // Fig. 13(d): Borg/mPP fewest servers but NOT least power; Goldilocks
    // least power and TCT below E-PVM; alternatives' TCT above E-PVM.
    let scenario = largescale(6, 6, 42);
    let runs = run_lineup(&scenario).expect("largescale feasible");
    let s: Vec<PolicySummary> = runs.iter().map(summarize).collect();
    let epvm = &s[0];
    let gold = s.last().expect("non-empty");
    let borg = s.iter().find(|x| x.policy == "Borg").expect("Borg");

    // E-PVM: every server active.
    assert_eq!(epvm.avg_active_servers, scenario.tree.server_count() as f64);
    // Borg packs tightest.
    assert!(borg.avg_active_servers < gold.avg_active_servers);
    // ...but Goldilocks draws the least power.
    for other in &s[..s.len() - 1] {
        assert!(
            gold.avg_total_watts < other.avg_total_watts,
            "{}",
            other.policy
        );
    }
    // TCT: Goldilocks below the E-PVM baseline; packers above it.
    assert!(gold.avg_tct_ms < epvm.avg_tct_ms);
    assert!(borg.avg_tct_ms > epvm.avg_tct_ms);
}

#[test]
fn pee_seventy_percent_is_the_power_sweet_spot() {
    // Fig. 2 in vivo: sweeping the packing target around the knee, 70 %
    // minimizes measured power (the U curve).
    let scenario = wiki_testbed(12, 120, 42);
    let mut watts = Vec::new();
    for pee in [0.5, 0.7, 0.95] {
        let cfg = goldilocks::core::GoldilocksConfig::default().with_pee_target(pee);
        let run = run_policy(&scenario, &Policy::Goldilocks(cfg)).expect("feasible");
        watts.push(summarize(&run).avg_total_watts);
    }
    assert!(
        watts[1] < watts[0],
        "70 % {} !< 50 % {}",
        watts[1],
        watts[0]
    );
    assert!(
        watts[1] < watts[2],
        "70 % {} !< 95 % {}",
        watts[1],
        watts[2]
    );
}

#[test]
fn migrations_are_tracked_and_costed() {
    let scenario = wiki_testbed(8, 80, 3);
    let run = run_policy(&scenario, &Policy::Goldilocks(Default::default())).expect("ok");
    assert_eq!(run.records[0].migrations, 0);
    let total: usize = run.records.iter().map(|r| r.migrations).sum();
    let freeze: f64 = run.records.iter().map(|r| r.freeze_seconds).sum();
    if total > 0 {
        assert!(freeze > 0.0, "migrations must cost freeze time");
    }
}
