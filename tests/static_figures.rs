//! Integration tests pinning the static figures (1, 2, 3, 5) and tables
//! (I, II) to the claims recorded in EXPERIMENTS.md.

use goldilocks::power::pee::{optimal_packing_util, packing_sweep};
use goldilocks::power::specpower::{bucket_shares_by_year, synthesize_population};
use goldilocks::power::{DataCenterSpec, ServerPowerModel};
use goldilocks::workload::mstrace::{
    search_trace, snapshot, weight_distributions, SearchTraceConfig,
};
use goldilocks::workload::AppProfile;

#[test]
fn fig1a_dell_crosses_the_proportional_line() {
    // Below the knee the Dell-2018 curve must sit under the proportional
    // line near full load and overtake it in marginal slope past the knee.
    let dell = ServerPowerModel::dell_2018();
    let prop = ServerPowerModel::proportional(1.0);
    // At 60 % load the proportional reference burns more than Dell's curve
    // region only if idle is low; the decisive claim is about slopes:
    let slope = |m: &ServerPowerModel, u: f64| {
        (m.curve.normalized_power(u + 0.02) - m.curve.normalized_power(u)) / 0.02
    };
    assert!(slope(&dell, 0.5) < slope(&prop, 0.5));
    assert!(slope(&dell, 0.9) > slope(&prop, 0.9));
    // And both normalize to 1.0 at full load.
    assert!((dell.curve.normalized_power(1.0) - 1.0).abs() < 1e-9);
}

#[test]
fn fig1b_pee_distribution_shifts_down_over_years() {
    let pop = synthesize_population(419, 2018);
    assert_eq!(pop.len(), 419);
    let shares = bucket_shares_by_year(&pop);
    let y2008 = shares
        .iter()
        .find(|(y, _)| *y == 2008)
        .expect("2008 present");
    let y2018 = shares
        .iter()
        .find(|(y, _)| *y == 2018)
        .expect("2018 present");
    assert!(y2008.1[0] > 0.7, "2008 dominated by PEE=100 %");
    assert!(y2018.1[0] < 0.15, "2018 PEE=100 % share collapsed");
    assert!(
        y2018.1[2] + y2018.1[3] + y2018.1[4] > 0.6,
        "60-80 % dominates 2018"
    );
}

#[test]
fn fig2_u_curve_bottom_at_seventy_percent() {
    let model = ServerPowerModel::dell_2018();
    let best = optimal_packing_util(&model, 200.0);
    assert!((best - 0.70).abs() < 0.03, "minimum at {best}");
    // Monotone server counts (panel a).
    let sweep = packing_sweep(
        &model,
        200.0,
        (20..=100).step_by(5).map(|i| i as f64 / 100.0),
    );
    for w in sweep.windows(2) {
        assert!(w[1].active_servers <= w[0].active_servers);
    }
    // Pronounced U (panel b): 100 % costs at least 1.8× the minimum.
    let min_w = sweep
        .iter()
        .map(|p| p.total_watts)
        .fold(f64::INFINITY, f64::min);
    let full_w = sweep.last().expect("non-empty").total_watts;
    assert!(full_w > 1.8 * min_w, "{full_w} vs {min_w}");
}

#[test]
fn fig3_task_packing_dominates_traffic_packing() {
    let dcs = DataCenterSpec::table_one();
    assert_eq!(dcs.len(), 5);
    let mut traffic = 0.0;
    let mut task = 0.0;
    for d in &dcs {
        let base = d.baseline(0.20, 0.10).total_watts();
        traffic += 1.0 - d.traffic_packing(0.20, 0.10).total_watts() / base;
        task += 1.0 - d.task_packing(0.20, 0.10, 0.95).total_watts() / base;
    }
    let (traffic, task) = (traffic / 5.0, task / 5.0);
    assert!(task > 3.0 * traffic, "task {task} vs traffic {traffic}");
    assert!((0.02..0.25).contains(&traffic));
    assert!((0.40..0.70).contains(&task));
}

#[test]
fn fig5_trace_statistics_match_published_numbers() {
    let w = search_trace(&SearchTraceConfig::default());
    assert_eq!(w.len(), 5488);
    let avg_conn = 2.0 * w.flows.len() as f64 / w.len() as f64;
    assert!((35.0..55.0).contains(&avg_conn), "{avg_conn}");
    let snap = snapshot(&w, 100);
    let d = weight_distributions(&snap);
    // Flat memory, heavy-tailed edges.
    assert!(d.vertex_memory.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    assert!(*d.edge_flows.last().expect("edges") > 10.0);
}

#[test]
fn tables_match_paper_rows() {
    // Table I counts.
    let expected = [98304usize, 184320, 46080, 32768, 93312];
    for (dc, servers) in DataCenterSpec::table_one().iter().zip(expected) {
        assert_eq!(dc.servers, servers, "{}", dc.name);
    }
    // Table II rows.
    let t2 = AppProfile::table_two();
    assert_eq!(t2[0].flow_count, 4944);
    assert_eq!(t2[2].demand.cpu, 376.0);
    assert_eq!(t2[3].demand.memory_gb, 57.0);
}
