//! Token-stream preprocessing shared by every rule: which tokens sit inside
//! test-only code, and where each statement roughly begins.
//!
//! Rules must not fire inside `#[cfg(test)]` modules, `#[test]` functions or
//! anything else compiled only for tests — those are allowed to `unwrap`,
//! use `HashMap`, and generally be convenient. The scanner walks the token
//! stream once, tracking brace depth, and marks the span of every item whose
//! attributes mention `test` (`#[cfg(test)]`, `#[test]`, `#[cfg(all(test,
//! …))]`, `#[cfg_attr(test, …)]`) as exempt.

use crate::lexer::{Tok, TokKind};

/// Per-token flags produced by one scan pass.
#[derive(Debug)]
pub struct ScanInfo {
    /// `exempt[i]` is true when token `i` is inside test-only code.
    pub exempt: Vec<bool>,
}

/// Computes test-exemption flags for a token stream.
pub fn scan(tokens: &[Tok]) -> ScanInfo {
    let mut exempt = vec![false; tokens.len()];
    let mut depth: i64 = 0;
    // Depth at which the currently-active exempt region was opened; the
    // region ends when `}` returns to that depth. Only the shallowest region
    // matters — nested test code is already exempt.
    let mut exempt_open_depth: Option<i64> = None;
    // An attribute mentioning `test` was just seen; the next item (block or
    // `;`-terminated) is exempt.
    let mut pending = false;

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        // Attribute: `#[…]` or `#![…]` — scan it wholesale so its tokens
        // (including `]` brackets) do not confuse depth tracking of the
        // indexing rule, and check for `test`.
        if t.kind == TokKind::Punct && t.text == "#" {
            let mut j = i + 1;
            if j < tokens.len() && tokens[j].text == "!" {
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "[" {
                // Find the matching `]`.
                let mut bracket = 0i64;
                let mut mentions_test = false;
                let mut k = j;
                while k < tokens.len() {
                    match tokens[k].text.as_str() {
                        "[" => bracket += 1,
                        "]" => {
                            bracket -= 1;
                            if bracket == 0 {
                                break;
                            }
                        }
                        "test" if tokens[k].kind == TokKind::Ident => mentions_test = true,
                        _ => {}
                    }
                    k += 1;
                }
                if mentions_test {
                    pending = true;
                }
                if exempt_open_depth.is_some() || mentions_test {
                    for flag in exempt.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
                        *flag = true;
                    }
                }
                i = (k + 1).min(tokens.len());
                continue;
            }
        }

        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => {
                depth += 1;
                if pending && exempt_open_depth.is_none() {
                    exempt_open_depth = Some(depth - 1);
                }
                pending = false;
            }
            "}" if t.kind == TokKind::Punct => {
                depth -= 1;
                if exempt_open_depth == Some(depth) {
                    exempt[i] = true;
                    exempt_open_depth = None;
                    i += 1;
                    continue;
                }
            }
            ";" if t.kind == TokKind::Punct && exempt_open_depth.is_none() => {
                // `#[cfg(test)] use foo;` — the exemption covers just the one
                // statement and ends here.
                if pending {
                    exempt[i] = true;
                }
                pending = false;
            }
            _ => {}
        }

        if exempt_open_depth.is_some() || pending {
            exempt[i] = true;
        }
        i += 1;
    }
    ScanInfo { exempt }
}

/// Rust keywords that can directly precede `[` without forming an index
/// expression (`let [a, b] = …`, `in [1, 2]`, …). Used by the
/// indexing-by-literal matcher.
pub fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "ref"
            | "in"
            | "return"
            | "match"
            | "if"
            | "else"
            | "move"
            | "box"
            | "as"
            | "break"
            | "continue"
            | "where"
            | "for"
            | "while"
            | "loop"
            | "impl"
            | "fn"
            | "pub"
            | "use"
            | "mod"
            | "const"
            | "static"
            | "type"
            | "struct"
            | "enum"
            | "trait"
            | "unsafe"
            | "extern"
            | "dyn"
            | "async"
            | "await"
            | "yield"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn exempt_idents(src: &str) -> Vec<(String, bool)> {
        let l = lex(src);
        let info = scan(&l.tokens);
        l.tokens
            .iter()
            .zip(&info.exempt)
            .filter(|(t, _)| t.kind == TokKind::Ident)
            .map(|(t, e)| (t.text.clone(), *e))
            .collect()
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let v = exempt_idents(
            "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\nfn live2() { c(); }",
        );
        let get = |name: &str| v.iter().find(|(s, _)| s == name).map(|(_, e)| *e);
        assert_eq!(get("a"), Some(false));
        assert_eq!(get("b"), Some(true));
        assert_eq!(get("c"), Some(false));
    }

    #[test]
    fn test_attribute_fn_is_exempt() {
        let v = exempt_idents("#[test]\nfn t() { x.unwrap(); }\nfn live() { y(); }");
        let get = |name: &str| v.iter().find(|(s, _)| s == name).map(|(_, e)| *e);
        assert_eq!(get("x"), Some(true));
        assert_eq!(get("y"), Some(false));
    }

    #[test]
    fn cfg_test_use_statement_only_covers_itself() {
        let v = exempt_idents("#[cfg(test)]\nuse std::fmt;\nfn live() { z(); }");
        let get = |name: &str| v.iter().find(|(s, _)| s == name).map(|(_, e)| *e);
        assert_eq!(get("fmt"), Some(true));
        assert_eq!(get("z"), Some(false));
    }

    #[test]
    fn non_test_attr_is_not_exempt() {
        let v = exempt_idents("#[derive(Debug)]\nstruct S;\nfn live() { q(); }");
        let get = |name: &str| v.iter().find(|(s, _)| s == name).map(|(_, e)| *e);
        assert_eq!(get("q"), Some(false));
    }
}
