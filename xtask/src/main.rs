//! `cargo xtask` — workspace task runner.
//!
//! ```text
//! cargo xtask lint            # human-readable report, exit 1 on violations
//! cargo xtask lint --json     # machine-readable diagnostics on stdout
//! cargo xtask lint FILE...    # lint specific files under the strict policy
//! cargo xtask rules           # print the rule table
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xtask::diag::{render_human, render_json, sort, Diagnostic, Severity};
use xtask::policy::Policy;
use xtask::rules::RULE_IDS;
use xtask::workspace::{analyze_target, workspace_targets, Target};

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--json] [--root DIR] [FILE...]
      Run the determinism-invariant analyzer. With no FILE arguments the
      whole workspace is scanned under the per-crate policy table; explicit
      files are scanned under the strict all-rules policy (used by the
      fixture self-tests). Exits 0 when clean, 1 on violations, 2 on usage
      or I/O errors.
  rules
      List every rule id with a one-line description.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    println!("rule ids enforced by `cargo xtask lint`:");
    for id in RULE_IDS {
        println!("  {id}");
    }
    println!("  malformed-allow   (meta: lint:allow without a `-- reason`)");
    println!("  unused-allow      (meta: lint:allow that suppresses nothing; warning)");
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root takes a directory");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag}");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
    }

    let targets: Vec<Target> = if files.is_empty() {
        match locate_root(&root).and_then(|r| workspace_targets(&r).map_err(|e| e.to_string())) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        files
            .into_iter()
            .map(|path| Target {
                label: path.to_string_lossy().replace('\\', "/"),
                path,
                policy: Policy::strict(),
            })
            .collect()
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut scanned = 0usize;
    for t in &targets {
        match analyze_target(t) {
            Ok(d) => {
                scanned += 1;
                diags.extend(d);
            }
            Err(e) => {
                eprintln!("error: {}: {e}", t.label);
                return ExitCode::from(2);
            }
        }
    }
    sort(&mut diags);

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if json {
        println!("{}", render_json(&diags));
    } else {
        print!("{}", render_human(&diags));
        eprintln!("xtask lint: {scanned} files scanned, {errors} error(s), {warnings} warning(s)");
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks upward from `start` to the directory containing the workspace's
/// `Cargo.toml` + `crates/`, so `cargo xtask lint` works from any subdir.
fn locate_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("cannot resolve {}: {e}", start.display()))?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml + crates/) at or above {}",
                start.display()
            ));
        }
    }
}
