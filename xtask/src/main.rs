//! `cargo xtask` — workspace task runner.
//!
//! ```text
//! cargo xtask lint               # per-file lexical report, exit 1 on violations
//! cargo xtask lint --json        # machine-readable diagnostics on stdout
//! cargo xtask lint FILE...       # lint specific files under the strict policy
//! cargo xtask analyze            # workspace-graph semantic passes + lexical rules
//! cargo xtask analyze --json     # machine-readable diagnostics on stdout
//! cargo xtask analyze --bless-schema   # regenerate the golden wire schema
//! cargo xtask rules              # print the rule table
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use xtask::analyze::{self, AnalyzeOptions};
use xtask::diag::{render_human, render_json, sort, Diagnostic, Severity};
use xtask::policy::Policy;
use xtask::rules::{ANALYZE_RULE_IDS, RULE_IDS};
use xtask::workspace::{analyze_target, locate_root, workspace_targets, Target};

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--json] [--root DIR] [FILE...]
      Run the per-file determinism-invariant rules. With no FILE arguments
      the whole workspace is scanned under the per-crate policy table;
      explicit files are scanned under the strict all-rules policy (used by
      the fixture self-tests). Exits 0 when clean, 1 on violations, 2 on
      usage or I/O errors.
  analyze [--json] [--root DIR] [--schema PATH] [--bless-schema] [FILE...]
      Run the workspace-graph semantic passes (determinism taint,
      zero-alloc hot-path closures, wire-format drift, registration
      drift) on top of every lexical rule. With no FILE arguments the
      whole workspace is analyzed and the golden wire schema at
      xtask/wire_schema.json is enforced; --bless-schema regenerates it.
      Explicit FILE arguments form one synthetic strict-policy crate
      (fixture self-tests); --schema points at an alternate golden file.
      Exit codes as for lint.
  rules
      List every rule id with a one-line description.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("analyze") => run_analyze(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    println!("rule ids enforced by `cargo xtask lint`:");
    for id in RULE_IDS {
        println!("  {id}");
    }
    println!("rule ids enforced by `cargo xtask analyze` (in addition to the above):");
    for id in ANALYZE_RULE_IDS {
        println!("  {id}");
    }
    println!("  malformed-allow   (meta: lint:allow without a `-- reason`)");
    println!("  unused-allow      (meta: lint:allow that suppresses nothing; warning)");
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root takes a directory");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag}");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
    }

    let targets: Vec<Target> = if files.is_empty() {
        match locate_root(&root).and_then(|r| workspace_targets(&r).map_err(|e| e.to_string())) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        files
            .into_iter()
            .map(|path| Target {
                label: path.to_string_lossy().replace('\\', "/"),
                path,
                crate_name: "fixture".into(),
                policy: Policy::strict(),
            })
            .collect()
    };

    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut scanned = 0usize;
    for t in &targets {
        match analyze_target(t) {
            Ok(d) => {
                scanned += 1;
                diags.extend(d);
            }
            Err(e) => {
                eprintln!("error: {}: {e}", t.label);
                return ExitCode::from(2);
            }
        }
    }
    sort(&mut diags);
    report(
        &diags,
        json,
        &format!("xtask lint: {scanned} files scanned"),
    )
}

fn run_analyze(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut opts = AnalyzeOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--bless-schema" => opts.bless_schema = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root takes a directory");
                    return ExitCode::from(2);
                }
            },
            "--schema" => match it.next() {
                Some(p) => opts.schema_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --schema takes a file path");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag}");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
            path => opts.files.push(PathBuf::from(path)),
        }
    }
    if opts.files.is_empty() {
        opts.root = match locate_root(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
    }

    // Wall-clock is reported for the EXPERIMENTS.md budget (< 10 s on the
    // full workspace); xtask is a host tool, not a deterministic crate, so
    // reading the monotonic clock here is fine (and lint does not scan it).
    let t0 = Instant::now();
    let rep = match analyze::run(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = t0.elapsed();
    if let Some(p) = &rep.blessed {
        eprintln!(
            "xtask analyze: golden wire schema written to {}",
            p.display()
        );
    }
    report(
        &rep.diags,
        json,
        &format!(
            "xtask analyze: {} files, {} fns, {} call edges in {:.2?}",
            rep.files, rep.fns, rep.edges, elapsed
        ),
    )
}

/// Renders diagnostics and maps them to the exit code contract.
fn report(diags: &[Diagnostic], json: bool, stats: &str) -> ExitCode {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    if json {
        println!("{}", render_json(diags));
    } else {
        print!("{}", render_human(diags));
    }
    eprintln!("{stats}, {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
