//! Driver for `cargo xtask analyze` — the workspace-graph semantic passes.
//!
//! Orchestration order matters and is fixed:
//!
//! 1. Lex/scan every target into a [`FileCtx`] and run the *lexical* rules
//!    (the same six `lint` runs) so `analyze` subsumes `lint`.
//! 2. Build the workspace call graph ([`crate::graph`]).
//! 3. Run the semantic passes: registry drift, determinism taint
//!    ([`crate::taint`]), zero-alloc closure ([`crate::alloc_lint`]), wire
//!    schema ([`crate::schema`]). Each returns the allow directives it
//!    consumed.
//! 4. Only then finalize per file: apply allows to the lexical findings and
//!    report malformed/unused directives. Deferring the unused-allow check
//!    until after the semantic passes is the point — an allow naming
//!    `zero-alloc-hot-path` at a boundary fn suppresses nothing lexically,
//!    and only this driver knows it was consumed by the closure walk.
//!
//! Two modes: **workspace** (no file args) walks every crate under the
//! per-crate policy table, enforces the built-in registration tables, and
//! checks the golden wire schema at `xtask/wire_schema.json`; **explicit**
//! (file args) treats the named files as one synthetic crate under the
//! strict policy — that is what the fixture self-tests drive, with
//! `--schema` pointing at a fixture golden when the drift pass is under
//! test.

use std::fs;
use std::path::PathBuf;

use crate::diag::{sort, Diagnostic};
use crate::graph::{build, check_registry, FileCtx, Graph};
use crate::policy::Policy;
use crate::rules::{finalize, raw_lexical};
use crate::workspace::{crate_visibility, workspace_targets};
use crate::{alloc_lint, schema, taint};

/// Parsed `analyze` invocation.
#[derive(Debug, Default)]
pub struct AnalyzeOptions {
    /// Workspace root (workspace mode); ignored when `files` is non-empty.
    pub root: PathBuf,
    /// Explicit files (fixture mode) — one synthetic crate, strict policy.
    pub files: Vec<PathBuf>,
    /// Golden schema override; defaults to `<root>/xtask/wire_schema.json`
    /// in workspace mode, and disables the drift pass in fixture mode when
    /// absent.
    pub schema_path: Option<PathBuf>,
    /// Regenerate the golden schema instead of comparing against it.
    pub bless_schema: bool,
}

/// What a run produced, for the CLI to render.
#[derive(Debug)]
pub struct AnalyzeReport {
    /// All diagnostics, sorted.
    pub diags: Vec<Diagnostic>,
    /// Files scanned.
    pub files: usize,
    /// Functions in the symbol table.
    pub fns: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Path the golden schema was written to, when blessing.
    pub blessed: Option<PathBuf>,
}

/// Runs the full analysis. `Err` is reserved for I/O and usage failures
/// (exit 2); findings come back as diagnostics (exit 1).
pub fn run(opts: &AnalyzeOptions) -> Result<AnalyzeReport, String> {
    let workspace_mode = opts.files.is_empty();

    // 1. Load targets.
    let (mut ctxs, visibility) = if workspace_mode {
        let targets = workspace_targets(&opts.root).map_err(|e| e.to_string())?;
        let visibility = crate_visibility(&opts.root).map_err(|e| e.to_string())?;
        let mut ctxs = Vec::with_capacity(targets.len());
        for t in &targets {
            let src = fs::read_to_string(&t.path).map_err(|e| format!("{}: {e}", t.label))?;
            ctxs.push(FileCtx::new(
                t.label.clone(),
                t.crate_name.clone(),
                t.policy,
                &src,
            ));
        }
        (ctxs, visibility)
    } else {
        let mut ctxs = Vec::with_capacity(opts.files.len());
        for path in &opts.files {
            let label = path.to_string_lossy().replace('\\', "/");
            let src = fs::read_to_string(path).map_err(|e| format!("{label}: {e}"))?;
            ctxs.push(FileCtx::new(
                label,
                "fixture".into(),
                Policy::strict(),
                &src,
            ));
        }
        let mut visibility = std::collections::BTreeMap::new();
        visibility.insert(
            "fixture".to_string(),
            std::collections::BTreeSet::from(["fixture".to_string()]),
        );
        (ctxs, visibility)
    };

    // Lexical findings, kept raw until the semantic passes have consumed
    // their allows.
    let mut raw: Vec<Vec<Diagnostic>> = Vec::with_capacity(ctxs.len());
    for c in &ctxs {
        raw.push(raw_lexical(&c.label, &c.lexed.tokens, &c.exempt, c.policy));
    }

    // 2–3. Graph and semantic passes.
    let (mut g, mut diags) = build(std::mem::take(&mut ctxs), &visibility);
    if workspace_mode {
        diags.extend(check_registry(&g));
    }
    let mut used: Vec<(usize, usize)> = Vec::new();

    let (taint_diags, taint_used) = taint::run(&g);
    diags.extend(taint_diags);
    used.extend(taint_used);

    let (alloc_diags, alloc_used) = alloc_lint::run(&g);
    diags.extend(alloc_diags);
    used.extend(alloc_used);

    let mut blessed = None;
    let golden_path = match (&opts.schema_path, workspace_mode) {
        (Some(p), _) => Some(p.clone()),
        (None, true) => Some(opts.root.join("xtask/wire_schema.json")),
        (None, false) => None,
    };
    if let Some(golden_path) = golden_path {
        let entries = schema::extract(&g);
        let golden_label = golden_path.to_string_lossy().replace('\\', "/");
        if opts.bless_schema {
            fs::write(&golden_path, schema::render(&entries))
                .map_err(|e| format!("{golden_label}: {e}"))?;
            blessed = Some(golden_path);
        } else {
            match fs::read_to_string(&golden_path) {
                Ok(text) => {
                    let (schema_diags, schema_used) =
                        schema::compare(&g, &entries, &text, &golden_label);
                    diags.extend(schema_diags);
                    used.extend(schema_used);
                }
                Err(_) if workspace_mode => diags.push(Diagnostic::error(
                    "wire-format-drift",
                    &golden_label,
                    1,
                    1,
                    "golden wire schema not found; generate it with \
                     `cargo xtask analyze --bless-schema` and commit it"
                        .into(),
                )),
                Err(e) => return Err(format!("{golden_label}: {e}")),
            }
        }
    }

    // 4. Mark pass-consumed allows used, then finalize per file.
    for (fi, ai) in used {
        if let Some(a) = g.files.get_mut(fi).and_then(|f| f.allows.get_mut(ai)) {
            a.used = true;
        }
    }
    let edges = g.edges.iter().map(Vec::len).sum();
    let Graph { mut files, fns, .. } = g;
    for (i, f) in files.iter_mut().enumerate() {
        let file_raw = std::mem::take(&mut raw[i]);
        diags.extend(finalize(
            &f.label,
            &f.lexed.comments,
            &mut f.allows,
            file_raw,
            false,
        ));
    }

    sort(&mut diags);
    Ok(AnalyzeReport {
        diags,
        files: files.len(),
        fns: fns.len(),
        edges,
        blessed,
    })
}
