//! Workspace task runner: the determinism-invariant static analyzers behind
//! `cargo xtask lint` and `cargo xtask analyze`.
//!
//! The repo's headline guarantees — byte-identical parallel lineups (PR 3),
//! bit-identical float association in the partitioner hot path (PR 4),
//! byte-identical WAL crash replay (PR 2) — are enforced dynamically by
//! equivalence tests. Those tests can silently lose coverage as code grows.
//! This crate adds the static wall in two layers:
//!
//! - **`lint`** — per-file lexical rules: every `.rs` file in the library
//!   crates is lexed and checked against repo-specific invariants clippy
//!   cannot express, so a stray `HashMap` iteration or `Instant::now()` in
//!   a deterministic crate fails CI before any equivalence test runs.
//! - **`analyze`** — workspace-graph semantic passes over a symbol table
//!   and call graph parsed from all crates: interprocedural determinism
//!   taint ([`taint`]), static zero-alloc hot-path closure enforcement
//!   ([`alloc_lint`]), and the wire-format drift guard ([`schema`]) with
//!   its checked-in golden fingerprints.
//!
//! See [`rules`] for the rule set, [`policy`] for which crates each rule
//! covers, [`graph`] for the call-graph construction and the hot-path /
//! sink / codec registries, and [`allow`] for the justified escape hatch.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod alloc_lint;
pub mod allow;
pub mod analyze;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod policy;
pub mod rules;
pub mod scanner;
pub mod schema;
pub mod taint;
pub mod workspace;
