//! Workspace task runner: the determinism-invariant static analyzer behind
//! `cargo xtask lint`.
//!
//! The repo's headline guarantees — byte-identical parallel lineups (PR 3),
//! bit-identical float association in the partitioner hot path (PR 4),
//! byte-identical WAL crash replay (PR 2) — are enforced dynamically by
//! equivalence tests. Those tests can silently lose coverage as code grows.
//! This crate adds the static wall: every `.rs` file in the library crates
//! is lexed and checked against repo-specific invariants clippy cannot
//! express, so a stray `HashMap` iteration or `Instant::now()` in a
//! deterministic crate fails CI before any equivalence test runs.
//!
//! See [`rules`] for the rule set, [`policy`] for which crates each rule
//! covers, and [`allow`] for the justified escape hatch.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod policy;
pub mod rules;
pub mod scanner;
pub mod workspace;
