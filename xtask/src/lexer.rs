//! A minimal, self-contained Rust lexer.
//!
//! The sandbox that grows this repository has no network access, so the
//! analyzer cannot depend on `syn`. Token-level analysis is sufficient for
//! every invariant we enforce (identifier and method-path patterns), and a
//! hand-rolled lexer keeps `cargo xtask lint` dependency-free and fully
//! deterministic: files are lexed byte-by-byte in path order, so two runs
//! over the same tree always produce byte-identical reports.
//!
//! The lexer understands everything needed to avoid false positives inside
//! non-code text: line and (nested) block comments, doc comments, string
//! literals, raw strings with arbitrary `#` fences, byte strings, char
//! literals vs. lifetimes, and numeric literals with suffixes. Comments are
//! not discarded entirely: line comments are scanned for `lint:allow`
//! directives (see [`crate::allow`]).

/// Kind of a lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the scanner decides which).
    Ident,
    /// Lifetime such as `'a` (including the quote).
    Lifetime,
    /// Integer literal, possibly with a suffix (`0`, `42usize`, `0xFF`).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2.5f64`).
    Float,
    /// String, raw-string, byte-string or C-string literal.
    Str,
    /// Character or byte literal.
    Char,
    /// Single punctuation byte (`.`, `:`, `[`, …). Multi-byte operators are
    /// emitted as consecutive punct tokens; the rule matcher works on those.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text as written (suffix included for literals).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in bytes).
    pub col: u32,
}

/// A comment found during lexing (used only for `lint:allow` directives).
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text without the leading `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus every comment encountered.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order (line and block, doc or not).
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) -> usize {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        self.pos - start
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments.
///
/// The lexer never fails: unterminated literals simply consume to the end of
/// the file. (`rustc` owns real error reporting; the analyzer only needs a
/// faithful token stream for code that already compiles.)
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(b) = c.peek(0) {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => {
                let start = c.pos + 2;
                c.eat_while(|b| b != b'\n');
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
                    line,
                });
            }
            b'/' if c.peek(1) == Some(b'*') => {
                c.bump();
                c.bump();
                let start = c.pos;
                let mut depth = 1usize;
                while depth > 0 {
                    match (c.peek(0), c.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                let end = c.pos.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    text: String::from_utf8_lossy(&c.src[start..end]).into_owned(),
                    line,
                });
            }
            b'r' | b'b' | b'c' if raw_or_prefixed_string(&c) => {
                let start = c.pos;
                lex_prefixed_string(&mut c);
                push(&mut out, TokKind::Str, &c, start, line, col);
            }
            b'"' => {
                let start = c.pos;
                c.bump();
                lex_plain_string(&mut c);
                push(&mut out, TokKind::Str, &c, start, line, col);
            }
            b'\'' => {
                let start = c.pos;
                c.bump();
                if is_char_literal(&c) {
                    lex_char_body(&mut c);
                    push(&mut out, TokKind::Char, &c, start, line, col);
                } else {
                    c.eat_while(is_ident_continue);
                    push(&mut out, TokKind::Lifetime, &c, start, line, col);
                }
            }
            b if b.is_ascii_digit() => {
                let start = c.pos;
                let kind = lex_number(&mut c);
                push(&mut out, kind, &c, start, line, col);
            }
            b if is_ident_start(b) => {
                let start = c.pos;
                c.eat_while(is_ident_continue);
                push(&mut out, TokKind::Ident, &c, start, line, col);
            }
            _ => {
                let start = c.pos;
                c.bump();
                push(&mut out, TokKind::Punct, &c, start, line, col);
            }
        }
    }
    out
}

fn push(out: &mut Lexed, kind: TokKind, c: &Cursor<'_>, start: usize, line: u32, col: u32) {
    out.tokens.push(Tok {
        kind,
        text: String::from_utf8_lossy(&c.src[start..c.pos]).into_owned(),
        line,
        col,
    });
}

/// True when the cursor sits on `r"`, `r#`, `b"`, `b'`, `br`, `c"`, `cr` —
/// i.e. a prefixed string/char rather than an identifier starting with the
/// same letter.
fn raw_or_prefixed_string(c: &Cursor<'_>) -> bool {
    match (c.peek(0), c.peek(1), c.peek(2)) {
        (Some(b'r'), Some(b'"'), _) | (Some(b'r'), Some(b'#'), _) => {
            // `r#ident` (raw identifier) is not a string: require `r#"` or
            // `r##…`. A raw ident has an ident char right after the `#`.
            if c.peek(1) == Some(b'#') {
                matches!(c.peek(2), Some(b'"') | Some(b'#'))
            } else {
                true
            }
        }
        (Some(b'b'), Some(b'"'), _) | (Some(b'b'), Some(b'\''), _) => true,
        (Some(b'b'), Some(b'r'), Some(b'"')) | (Some(b'b'), Some(b'r'), Some(b'#')) => true,
        (Some(b'c'), Some(b'"'), _) => true,
        (Some(b'c'), Some(b'r'), Some(b'"')) | (Some(b'c'), Some(b'r'), Some(b'#')) => true,
        _ => false,
    }
}

fn lex_prefixed_string(c: &mut Cursor<'_>) {
    // Consume the prefix letters.
    c.eat_while(|b| b == b'b' || b == b'r' || b == b'c');
    if c.peek(0) == Some(b'\'') {
        // Byte literal b'x'.
        c.bump();
        lex_char_body(c);
        return;
    }
    let fences = c.eat_while(|b| b == b'#');
    if c.peek(0) == Some(b'"') {
        c.bump();
        if fences > 0 || c.src[c.pos.saturating_sub(2)] == b'r' || raw_prefix_before(c, fences) {
            lex_raw_string(c, fences);
        } else {
            lex_plain_string(c);
        }
    }
}

/// True when the quote we just consumed was opened by a raw prefix (`r` or
/// `br`/`cr`), meaning escapes are inert.
fn raw_prefix_before(c: &Cursor<'_>, fences: usize) -> bool {
    // Look back past the quote and fences for an `r`.
    let idx = c.pos.checked_sub(fences + 2);
    matches!(idx.and_then(|i| c.src.get(i)), Some(b'r'))
}

fn lex_raw_string(c: &mut Cursor<'_>, fences: usize) {
    loop {
        match c.bump() {
            None => break,
            Some(b'"') => {
                let mut seen = 0usize;
                while seen < fences && c.peek(0) == Some(b'#') {
                    c.bump();
                    seen += 1;
                }
                if seen == fences {
                    break;
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_plain_string(c: &mut Cursor<'_>) {
    loop {
        match c.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                c.bump();
            }
            Some(_) => {}
        }
    }
}

/// Decides `'x'` / `'\n'` (char literal) versus `'label` (lifetime), with the
/// cursor positioned just past the opening quote.
fn is_char_literal(c: &Cursor<'_>) -> bool {
    match c.peek(0) {
        Some(b'\\') => true,
        Some(b) if is_ident_start(b) || b.is_ascii_digit() => c.peek(1) == Some(b'\''),
        Some(_) => true,
        None => false,
    }
}

fn lex_char_body(c: &mut Cursor<'_>) {
    if c.bump() == Some(b'\\') {
        c.bump();
        // Multi-byte escapes (\u{…}, \x41) — consume to the closing quote.
        c.eat_while(|b| b != b'\'' && b != b'\n');
    }
    if c.peek(0) == Some(b'\'') {
        c.bump();
    }
}

fn lex_number(c: &mut Cursor<'_>) -> TokKind {
    let start = c.pos;
    let mut kind = TokKind::Int;
    c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    // A fractional part: `1.5` but not `1..2` (range) or `1.method()`.
    if c.peek(0) == Some(b'.') {
        if let Some(after) = c.peek(1) {
            if after.is_ascii_digit() {
                kind = TokKind::Float;
                c.bump();
                c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
            }
        }
    }
    // Exponent sign: `1e-9` / `2E+4` — the `e` was consumed by the alnum run.
    if matches!(c.src.get(c.pos.wrapping_sub(1)), Some(b'e') | Some(b'E'))
        && c.pos > start + 1
        && matches!(c.peek(0), Some(b'+') | Some(b'-'))
        && c.peek(1).is_some_and(|b| b.is_ascii_digit())
    {
        kind = TokKind::Float;
        c.bump();
        c.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    if kind == TokKind::Int && c.src[start..c.pos].contains(&b'.') {
        kind = TokKind::Float;
    }
    kind
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("map.unwrap()");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "map".into()),
                (TokKind::Punct, ".".into()),
                (TokKind::Ident, "unwrap".into()),
                (TokKind::Punct, "(".into()),
                (TokKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("a // lint:allow(x) -- y\n/* block */ b");
        assert_eq!(l.tokens.len(), 2);
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, " lint:allow(x) -- y");
        assert_eq!(l.comments[0].line, 1);
    }

    #[test]
    fn nested_block_comment() {
        let l = lex("/* a /* b */ c */ x");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "x");
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex("let s = \"HashMap.unwrap()\"; let r = r#\"thread_rng\"#;");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "thread_rng"));
    }

    #[test]
    fn lifetime_vs_char() {
        let t = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "'x'"));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn multi_fence_raw_strings_swallow_inner_fences() {
        // `r##"…"#…"##` — the single-fence close inside must not end it.
        let l = lex(r####"let s = r##"has "# inside .unwrap()"## ; done"####);
        assert!(l.tokens.iter().all(|t| t.text != "unwrap"));
        assert!(l.tokens.iter().any(|t| t.text == "done"));
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.starts_with("r##\"") && s.text.ends_with("\"##"));
    }

    #[test]
    fn raw_identifier_is_an_ident_not_a_string() {
        let t = kinds("let r#type = r#match;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "r"));
        assert!(t.iter().all(|(k, _)| *k != TokKind::Str));
    }

    #[test]
    fn byte_and_c_strings_hide_their_contents() {
        let l = lex(r###"let a = b"HashMap"; let b = br#"panic!"# ; let c = c"unwrap";"###);
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "panic" && t.text != "unwrap"));
    }

    #[test]
    fn deeply_nested_block_comment_terminates_correctly() {
        let l = lex("/* 1 /* 2 /* 3 */ 2 */ 1 */ after");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "after");
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetime_tick_before_static_and_in_bounds() {
        let t = kinds("fn f<'a, 'b: 'a>(x: &'static str) -> &'a str { x }");
        let lifetimes: Vec<_> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'b", "'a", "'static", "'a"]);
    }

    #[test]
    fn escaped_quote_char_is_not_a_lifetime() {
        let t = kinds(r"let q = '\''; let u = '\u{41}'; still_here");
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            2,
            "{t:?}"
        );
        assert!(t.iter().all(|(k, _)| *k != TokKind::Lifetime));
        assert!(t.iter().any(|(_, s)| s == "still_here"));
    }

    #[test]
    fn numbers() {
        let t = kinds("a[0]; b[1usize]; 1.5e-9; 0xFF");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Int && s == "0"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Int && s == "1usize"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Float && s == "1.5e-9"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Int && s == "0xFF"));
    }

    #[test]
    fn line_col_positions() {
        let l = lex("ab\n  cd");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }
}
