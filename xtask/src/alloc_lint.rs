//! Static zero-alloc hot-path enforcement (`zero-alloc-hot-path`).
//!
//! The runtime counting-allocator tests (PR 4's partition lock, PR 9's
//! arena lock) prove specific *executions* allocation-free; this pass
//! proves the property statically over the whole transitive call graph of
//! every registered hot path (`// analyze:hot-path`), so a new allocating
//! helper three calls deep fails the push, not the soak bench.
//!
//! Banned constructs inside the closure (scanned lexically per function
//! body, test regions exempt):
//!
//! - `collect`, `to_vec`, `to_owned`, `to_string`, `with_capacity` calls
//! - `format!` / `vec!` macros
//! - `.clone()` method calls (`clone_from` stays legal — it reuses the
//!   destination's capacity, which is exactly the warm-path idiom)
//! - `Box::new`, `Rc::new`, `Arc::new`, `Vec::new`, `String::new`,
//!   `VecDeque::new`, `BTreeMap::new`, `BTreeSet::new`, `HashMap::new`,
//!   `HashSet::new`, and `String::from`
//!
//! Deliberately *not* banned: `push`, `resize`, `resize_with`,
//! `extend_from_slice`, `reserve`, `clear`, `truncate` — warm-growth
//! operations whose steady-state cost is zero once capacity has been
//! reached; the runtime locks already pin that behavior.
//!
//! Escape hatches:
//!
//! - A `// lint:allow(zero-alloc-hot-path) -- reason` covering a
//!   *function declaration* marks that function as a deliberate
//!   **allocation boundary**: the walk stops there without scanning the
//!   body or descending further. This is how cold setup helpers
//!   (`BalanceTracker::new`, scratch splitting) are carved out of a warm
//!   closure without scattering token-level allows through general code.
//! - The same allow covering a banned token suppresses that one finding.
//!
//! Every finding carries the blame path from the registered root down to
//! the allocating construct.

use std::collections::BTreeSet;

use crate::allow::find_covering;
use crate::diag::Diagnostic;
use crate::graph::Graph;
use crate::lexer::{Tok, TokKind};

const RULE: &str = "zero-alloc-hot-path";

/// Call-style allocating identifiers.
const BANNED_CALLS: &[&str] = &[
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "with_capacity",
];

/// Allocating macros.
const BANNED_MACROS: &[&str] = &["format", "vec"];

/// Owning types whose `new` (and `String::from`) constructors allocate or
/// set up to allocate.
const ALLOC_TYPES: &[&str] = &[
    "Box", "Rc", "Arc", "Vec", "String", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet",
];

/// Runs the pass. Returns diagnostics plus `(file index, allow index)`
/// pairs for boundary/suppression allows this pass consumed.
pub fn run(g: &Graph) -> (Vec<Diagnostic>, Vec<(usize, usize)>) {
    let mut diags = Vec::new();
    let mut used_allows = Vec::new();
    // One finding per construct site even when several roots reach it.
    let mut reported: BTreeSet<(usize, u32, u32)> = BTreeSet::new();

    let roots: Vec<usize> = (0..g.fns.len()).filter(|&f| g.fns[f].hot_path).collect();
    for root in roots {
        walk_root(g, root, &mut diags, &mut used_allows, &mut reported);
    }
    (diags, used_allows)
}

fn walk_root(
    g: &Graph,
    root: usize,
    diags: &mut Vec<Diagnostic>,
    used_allows: &mut Vec<(usize, usize)>,
    reported: &mut BTreeSet<(usize, u32, u32)>,
) {
    // DFS with a parent map so findings can print root -> ... -> fn.
    let n = g.fns.len();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut stack = vec![root];
    seen[root] = true;
    while let Some(f) = stack.pop() {
        let info = &g.fns[f];
        let file = &g.files[info.file];

        // Boundary: a fn-declaration allow stops the walk here. The root
        // itself cannot be a boundary — registering a hot path and
        // immediately allowing it away would make the gate vacuous.
        if f != root {
            if let Some(ai) = find_covering(&file.allows, &file.lexed.comments, RULE, info.line) {
                used_allows.push((info.file, ai));
                continue;
            }
        }

        scan_body(g, f, root, &prev, diags, used_allows, reported);

        for e in &g.edges[f] {
            if !seen[e.callee] {
                seen[e.callee] = true;
                prev[e.callee] = Some(f);
                stack.push(e.callee);
            }
        }
    }
}

/// Scans one function body for banned constructs; findings are anchored at
/// the construct token.
fn scan_body(
    g: &Graph,
    f: usize,
    root: usize,
    prev: &[Option<usize>],
    diags: &mut Vec<Diagnostic>,
    used_allows: &mut Vec<(usize, usize)>,
    reported: &mut BTreeSet<(usize, u32, u32)>,
) {
    let info = &g.fns[f];
    let file = &g.files[info.file];
    let toks = &file.lexed.tokens;
    let (lo, hi) = info.body;
    for i in lo..=hi {
        if file.exempt[i] || toks[i].kind != TokKind::Ident {
            continue;
        }
        let Some(what) = banned_at(toks, i) else {
            continue;
        };
        let t = &toks[i];
        if !reported.insert((info.file, t.line, t.col)) {
            continue;
        }
        if let Some(ai) = find_covering(&file.allows, &file.lexed.comments, RULE, t.line) {
            used_allows.push((info.file, ai));
            continue;
        }
        let path = blame_path(g, f, root, prev);
        diags.push(Diagnostic::error(
            RULE,
            &file.label,
            t.line,
            t.col,
            format!(
                "allocating construct `{what}` inside the zero-alloc closure of hot path \
                 `{}` (reached via {path}); hoist the allocation into setup, reuse scratch \
                 capacity, or mark the enclosing fn as an allocation boundary with \
                 `// lint:allow(zero-alloc-hot-path) -- <reason>` at its declaration",
                g.fns[root].qual_name(),
            ),
        ));
    }
}

/// Recognizes a banned construct at ident `i`; returns its display name.
fn banned_at(toks: &[Tok], i: usize) -> Option<String> {
    let t = &toks[i];
    let next_is = |j: usize, s: &str| toks.get(j).is_some_and(|n| n.text == s);
    // Opening paren, optionally past a turbofish (`collect::<Vec<_>>()`).
    let callsite = |mut j: usize| -> bool {
        if next_is(j, ":") && next_is(j + 1, ":") && next_is(j + 2, "<") {
            let mut depth = 0i64;
            while j + 2 < toks.len() {
                match toks[j + 2].text.as_str() {
                    "<" => depth += 1,
                    ">" if toks[j + 1].text == "-" => {}
                    ">" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 3;
                            return next_is(j, "(");
                        }
                    }
                    "(" | ";" | "{" => return false,
                    _ => {}
                }
                j += 1;
            }
            return false;
        }
        next_is(j, "(")
    };
    let qualifier = || -> Option<&str> {
        if i >= 3
            && toks[i - 1].text == ":"
            && toks[i - 2].text == ":"
            && toks[i - 3].kind == TokKind::Ident
        {
            Some(toks[i - 3].text.as_str())
        } else {
            None
        }
    };

    if BANNED_MACROS.contains(&t.text.as_str()) && next_is(i + 1, "!") {
        return Some(format!("{}!", t.text));
    }
    if BANNED_CALLS.contains(&t.text.as_str()) && callsite(i + 1) {
        return match qualifier() {
            Some(q) => Some(format!("{q}::{}", t.text)),
            None => Some(t.text.clone()),
        };
    }
    if t.text == "clone" && callsite(i + 1) && i > 0 && toks[i - 1].text == "." {
        return Some(".clone()".into());
    }
    if t.text == "new" && callsite(i + 1) {
        if let Some(q) = qualifier() {
            if ALLOC_TYPES.contains(&q) {
                return Some(format!("{q}::new"));
            }
        }
    }
    if t.text == "from" && callsite(i + 1) && qualifier() == Some("String") {
        return Some("String::from".into());
    }
    None
}

/// Renders `root -> ... -> f` using the DFS parent map.
fn blame_path(g: &Graph, f: usize, root: usize, prev: &[Option<usize>]) -> String {
    let mut ids = vec![f];
    let mut cur = f;
    while cur != root {
        match prev[cur] {
            Some(p) => {
                ids.push(p);
                cur = p;
            }
            None => break,
        }
    }
    ids.reverse();
    ids.iter()
        .map(|&x| g.fns[x].qual_name())
        .collect::<Vec<_>>()
        .join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, FileCtx};
    use crate::policy::Policy;
    use std::collections::{BTreeMap, BTreeSet};

    fn run_on(src: &str) -> (Vec<Diagnostic>, Vec<(usize, usize)>) {
        let ctx = FileCtx::new("t.rs".into(), "fixture".into(), Policy::strict(), src);
        let mut vis = BTreeMap::new();
        vis.insert(
            "fixture".to_string(),
            BTreeSet::from(["fixture".to_string()]),
        );
        let (g, _) = build(vec![ctx], &vis);
        run(&g)
    }

    #[test]
    fn allocating_helper_reached_from_root_is_flagged() {
        let (d, _) = run_on(
            "fn helper(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n\
             // analyze:hot-path -- test\n\
             fn hot(n: usize) { let _ = helper(n); }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "zero-alloc-hot-path");
        assert_eq!((d[0].line, d[0].col), (1, 39));
        assert!(d[0].message.contains("hot -> helper"), "{}", d[0].message);
        assert!(
            d[0].message.contains("Vec::with_capacity"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn warm_growth_ops_and_clone_from_stay_legal() {
        let (d, _) = run_on(
            "// analyze:hot-path -- test\n\
             fn hot(buf: &mut Vec<u8>, other: &Vec<u8>) {\n\
             buf.clear();\n\
             buf.extend_from_slice(other);\n\
             buf.push(1);\n\
             buf.clone_from(other);\n\
             buf.resize(8, 0);\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn boundary_allow_stops_the_walk_and_is_marked_used() {
        let (d, used) = run_on(
            "// lint:allow(zero-alloc-hot-path) -- cold setup: allocates scratch once\n\
             fn setup() -> Vec<u8> { vec![0; 8] }\n\
             // analyze:hot-path -- test\n\
             fn hot() { let _ = setup(); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(used.len(), 1);
    }

    #[test]
    fn collect_format_clone_and_box_new_are_banned() {
        let (d, _) = run_on(
            "// analyze:hot-path -- test\n\
             fn hot(xs: &[u8]) {\n\
             let a: Vec<u8> = xs.iter().copied().collect();\n\
             let b = format!(\"x\");\n\
             let c = xs.to_vec();\n\
             let d = b.clone();\n\
             let e = Box::new(1u8);\n\
             }\n",
        );
        let names: Vec<&str> = d.iter().map(|x| x.rule.as_str()).collect();
        assert_eq!(d.len(), 5, "{names:?}: {d:?}");
        assert!(d.iter().any(|x| x.message.contains("collect")));
        assert!(d.iter().any(|x| x.message.contains("format!")));
        assert!(d.iter().any(|x| x.message.contains("to_vec")));
        assert!(d.iter().any(|x| x.message.contains(".clone()")));
        assert!(d.iter().any(|x| x.message.contains("Box::new")));
    }

    #[test]
    fn unreached_allocations_are_ignored() {
        let (d, _) = run_on(
            "fn cold() -> Vec<u8> { Vec::new() }\n\
             // analyze:hot-path -- test\n\
             fn hot() { let x = 1; }\n",
        );
        assert!(d.is_empty());
    }
}
