//! Determinism taint propagation (`determinism-taint`).
//!
//! The lexical rules ban entropy and unordered iteration *where the policy
//! is strict*; this pass closes the remaining interprocedural hole: a
//! function may be individually clean yet transitively call something that
//! reads a clock, draws from an unseeded RNG, or iterates a hash map — and
//! if that function is a registered ordering-sensitive sink (WAL append,
//! report emit, proto encode, partition seed derivation), the
//! nondeterminism lands in replayed bytes.
//!
//! Semantics:
//!
//! - **Sources.** Any non-test token sequence matched by the lexical
//!   entropy / unordered-iteration / unseeded-RNG matchers
//!   ([`crate::rules`]) marks its enclosing function as a taint source.
//!   Sources count even when a file-local `lint:allow` silenced the
//!   lexical rule, and even in crates whose policy permits entropy
//!   (`bench`): an allow justifies the *local* use, not its reachability
//!   from a replay-critical sink.
//! - **Propagation.** Taint flows backwards along call edges to a
//!   fixpoint: a function is tainted iff it contains a source or calls a
//!   tainted function.
//! - **Findings.** One error per registered sink that ends up tainted,
//!   anchored at the sink's declaration and carrying the shortest
//!   call path down to a concrete source location.
//! - **Escape hatch.** `// lint:allow(determinism-taint) -- reason`
//!   covering the sink's declaration line suppresses the finding.
//!
//! Because the call graph over-approximates (name-based resolution), a
//! finding is a *reachability claim*, not a proof of execution — exactly
//! the polarity a push-time gate wants.

use std::collections::VecDeque;

use crate::allow::find_covering;
use crate::diag::Diagnostic;
use crate::graph::Graph;
use crate::rules;

const RULE: &str = "determinism-taint";

/// How a function became a taint source.
struct Source {
    what: String,
    line: u32,
    col: u32,
}

/// Runs the pass. Returns diagnostics plus `(file index, allow index)`
/// pairs for allows this pass consumed (so the driver can mark them used).
pub fn run(g: &Graph) -> (Vec<Diagnostic>, Vec<(usize, usize)>) {
    let n = g.fns.len();

    // Pass 1: direct sources per function.
    let mut sources: Vec<Option<Source>> = Vec::with_capacity(n);
    for f in 0..n {
        sources.push(direct_source(g, f));
    }

    // Pass 2: fixpoint over reversed edges — seed the worklist with source
    // functions, taint every caller... no: taint flows from callee to
    // caller (a caller of a tainted fn is tainted), so propagate along
    // reverse edges of the "calls" relation.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, es) in g.edges.iter().enumerate() {
        for e in es {
            rev[e.callee].push(caller);
        }
    }
    let mut tainted = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (f, s) in sources.iter().enumerate() {
        if s.is_some() {
            tainted[f] = true;
            queue.push_back(f);
        }
    }
    while let Some(f) = queue.pop_front() {
        for &caller in &rev[f] {
            if !tainted[caller] {
                tainted[caller] = true;
                queue.push_back(caller);
            }
        }
    }

    // Pass 3: findings at tainted sinks, with a shortest path (BFS over
    // forward edges restricted to tainted functions) to a source.
    let mut diags = Vec::new();
    let mut used_allows = Vec::new();
    for (f, info) in g.fns.iter().enumerate() {
        let Some(label) = &info.sink else { continue };
        if !tainted[f] {
            continue;
        }
        let file = &g.files[info.file];
        let path = shortest_source_path(g, f, &tainted, &sources);
        let msg = describe(g, label, &path, &sources);
        if let Some(ai) = find_covering(&file.allows, &file.lexed.comments, RULE, info.line) {
            used_allows.push((info.file, ai));
            continue;
        }
        diags.push(Diagnostic::error(
            RULE,
            &file.label,
            info.line,
            info.col,
            msg,
        ));
    }
    (diags, used_allows)
}

/// Scans one function's body for a direct nondeterminism source.
fn direct_source(g: &Graph, f: usize) -> Option<Source> {
    let info = &g.fns[f];
    let file = &g.files[info.file];
    let (lo, hi) = info.body;
    let toks = &file.lexed.tokens;
    for i in lo..=hi {
        if file.exempt[i] {
            continue;
        }
        if let Some(what) = rules::unordered_source(toks, i) {
            return Some(Source {
                what: format!("unordered iteration over `{what}`"),
                line: toks[i].line,
                col: toks[i].col,
            });
        }
        if let Some(what) = rules::entropy_source(toks, i) {
            return Some(Source {
                what: format!("ambient entropy via `{what}`"),
                line: toks[i].line,
                col: toks[i].col,
            });
        }
        if let Some(what) = rules::rng_source(toks, i) {
            return Some(Source {
                what: format!("unseeded RNG via `{what}`"),
                line: toks[i].line,
                col: toks[i].col,
            });
        }
    }
    None
}

/// BFS from `start` through tainted functions to the nearest function with
/// a direct source; returns the path as function ids (start first).
fn shortest_source_path(
    g: &Graph,
    start: usize,
    tainted: &[bool],
    sources: &[Option<Source>],
) -> Vec<usize> {
    let n = g.fns.len();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    let mut hit = start;
    'bfs: while let Some(f) = queue.pop_front() {
        if sources[f].is_some() {
            hit = f;
            break 'bfs;
        }
        for e in &g.edges[f] {
            let c = e.callee;
            if tainted[c] && !seen[c] {
                seen[c] = true;
                prev[c] = Some(f);
                queue.push_back(c);
            }
        }
    }
    let mut path = vec![hit];
    while let Some(p) = prev[*path.last().unwrap_or(&hit)] {
        path.push(p);
    }
    path.reverse();
    path
}

/// Renders the finding message with the call chain and source location.
fn describe(g: &Graph, sink_label: &str, path: &[usize], sources: &[Option<Source>]) -> String {
    let chain: Vec<String> = path.iter().map(|&f| g.fns[f].qual_name()).collect();
    let last = *path.last().unwrap_or(&0);
    let src_desc = match &sources[last] {
        Some(s) => {
            let file = &g.files[g.fns[last].file].label;
            format!("{} at {file}:{}:{}", s.what, s.line, s.col)
        }
        None => "an unresolved source".to_string(),
    };
    format!(
        "ordering-sensitive sink `{}` ({sink_label}) is reachable from a nondeterminism \
         source: {} -- {src_desc}; replayed bytes will diverge. Break the chain or add \
         `// lint:allow(determinism-taint) -- <reason>` at the sink",
        chain.first().map(String::as_str).unwrap_or("?"),
        chain.join(" -> "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, FileCtx};
    use crate::policy::Policy;
    use std::collections::{BTreeMap, BTreeSet};

    fn run_on(src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new("t.rs".into(), "fixture".into(), Policy::strict(), src);
        let mut vis = BTreeMap::new();
        vis.insert(
            "fixture".to_string(),
            BTreeSet::from(["fixture".to_string()]),
        );
        let (g, _) = build(vec![ctx], &vis);
        run(&g).0
    }

    #[test]
    fn two_hop_chain_reaches_sink() {
        let d = run_on(
            "fn noisy() -> u64 { let c = std::time::Instant::now(); 0 }\n\
             fn mid() -> u64 { noisy() }\n\
             // analyze:sink(out) -- test\n\
             fn emit() { let _ = mid(); }\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "determinism-taint");
        assert_eq!((d[0].line, d[0].col), (4, 4));
        assert!(
            d[0].message.contains("emit -> mid -> noisy"),
            "{}",
            d[0].message
        );
        assert!(d[0].message.contains("Instant"), "{}", d[0].message);
    }

    #[test]
    fn clean_sink_is_silent_and_allow_suppresses() {
        let d = run_on("// analyze:sink(out) -- test\nfn emit() { let x = 1 + 1; }\n");
        assert!(d.is_empty());
        let d = run_on(
            "fn noisy() { let c = std::time::Instant::now(); }\n\
             // lint:allow(determinism-taint) -- deliberate wall-clock stamp in header\n\
             // analyze:sink(out) -- test\n\
             fn emit() { noisy(); }\n",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn source_under_lexical_allow_still_taints() {
        let d = run_on(
            "fn noisy() {\n\
             // lint:allow(no-ambient-entropy) -- locally justified\n\
             let c = std::time::Instant::now();\n\
             }\n\
             // analyze:sink(out) -- test\n\
             fn emit() { noisy(); }\n",
        );
        assert_eq!(d.len(), 1, "local allow must not launder reachability");
    }
}
