//! The determinism-invariant rules, matched over the token stream.
//!
//! Every rule here guards a guarantee an earlier PR established dynamically:
//!
//! | rule                     | protects                                      |
//! |--------------------------|-----------------------------------------------|
//! | `no-unordered-iteration` | byte-identical lineups/WAL replay (PR 2–4)    |
//! | `no-ambient-entropy`     | seeded replay of chaos schedules (PR 1–2)     |
//! | `no-panic-in-libs`       | the fallback ladder never unwinds (PR 1)      |
//! | `rng-discipline`         | schedule-independent branch seeds (PR 3)      |
//! | `float-association`      | bit-identical float association (PR 4)        |

use crate::allow::{find_covering, parse_allows};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Tok, TokKind};
use crate::policy::Policy;
use crate::scanner::{is_keyword, scan};

/// Stable ids of every source-level (single-file, lexical) rule, in
/// documentation order.
pub const RULE_IDS: &[&str] = &[
    "no-unordered-iteration",
    "no-ambient-entropy",
    "no-panic-in-libs",
    "rng-discipline",
    "float-association",
    "no-lossy-cast-in-codecs",
];

/// Rule ids that only `cargo xtask analyze` (the workspace-graph semantic
/// passes) can emit. `lint` must still recognize them in `lint:allow`
/// directives — an allow naming one of these is well-formed, and its
/// used/unused status is only decidable by `analyze`.
pub const ANALYZE_RULE_IDS: &[&str] = &[
    "determinism-taint",
    "zero-alloc-hot-path",
    "wire-format-drift",
    "registry-drift",
];

/// Analyzes one file's source under `policy`, applying `lint:allow`
/// directives, and returns its diagnostics (unsorted).
///
/// This is the single-file (`lint`) entry point: rules whose usage only the
/// workspace-graph passes can see ([`ANALYZE_RULE_IDS`]) are exempt from
/// the unused-allow check here.
pub fn analyze_source(path_label: &str, src: &str, policy: Policy) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let info = scan(&lexed.tokens);
    let mut allows = parse_allows(&lexed.comments);
    let raw = raw_lexical(path_label, &lexed.tokens, &info.exempt, policy);
    finalize(path_label, &lexed.comments, &mut allows, raw, true)
}

/// Runs every lexical rule active under `policy` over a token stream,
/// returning raw (pre-`lint:allow`) diagnostics.
pub fn raw_lexical(
    path_label: &str,
    toks: &[Tok],
    exempt: &[bool],
    policy: Policy,
) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    for (i, ex) in exempt.iter().enumerate().take(toks.len()) {
        if *ex {
            continue;
        }
        if policy.no_unordered_iteration {
            check_unordered(path_label, toks, i, &mut raw);
        }
        if policy.no_ambient_entropy {
            check_entropy(path_label, toks, i, &mut raw);
        }
        if policy.no_panic {
            check_panic(path_label, toks, i, &mut raw);
        }
        if policy.rng_discipline {
            check_rng(path_label, toks, i, &mut raw);
        }
        if policy.float_association {
            check_float(path_label, toks, i, &mut raw);
        }
        if policy.no_lossy_cast {
            check_cast(path_label, toks, i, &mut raw);
        }
    }
    raw
}

/// Applies the `lint:allow` escape hatches to `raw` diagnostics and appends
/// the meta-rules (`malformed-allow`, `unused-allow`).
///
/// A directive only suppresses when it carries a written reason; reasonless
/// or misspelled directives are themselves violations and cannot be
/// silenced. With `defer_analyze_rules` set (the single-file `lint` mode),
/// an unconsumed allow naming only [`ANALYZE_RULE_IDS`] rules is not
/// reported as unused — only the workspace-graph passes can consume it.
pub fn finalize(
    path_label: &str,
    comments: &[crate::lexer::Comment],
    allows: &mut [crate::allow::AllowDirective],
    raw: Vec<Diagnostic>,
    defer_analyze_rules: bool,
) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in raw {
        let covering = find_covering(allows, comments, &d.rule, d.line);
        match covering {
            Some(idx) if allows[idx].reason.is_some() => allows[idx].used = true,
            _ => out.push(d),
        }
    }
    for a in allows.iter() {
        if a.reason.is_none() {
            out.push(Diagnostic::error(
                "malformed-allow",
                path_label,
                a.line,
                1,
                "lint:allow directive has no `-- reason`; every escape hatch must carry a \
                 written justification"
                    .into(),
            ));
        }
        for r in &a.rules {
            if !RULE_IDS.contains(&r.as_str()) && !ANALYZE_RULE_IDS.contains(&r.as_str()) {
                out.push(Diagnostic::error(
                    "malformed-allow",
                    path_label,
                    a.line,
                    1,
                    format!("lint:allow names unknown rule `{r}`"),
                ));
            }
        }
        let analyze_only = a
            .rules
            .iter()
            .all(|r| ANALYZE_RULE_IDS.contains(&r.as_str()));
        if a.reason.is_some() && !a.used && !(defer_analyze_rules && analyze_only) {
            out.push(Diagnostic {
                rule: "unused-allow".into(),
                path: path_label.into(),
                line: a.line,
                col: 1,
                message: format!(
                    "lint:allow({}) suppresses nothing on this or the next line; remove it",
                    a.rules.join(", ")
                ),
                severity: Severity::Warning,
            });
        }
    }
    out
}

const UNORDERED_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "hash_map",
    "hash_set",
    "AHashMap",
    "AHashSet",
    "FxHashMap",
    "FxHashSet",
    "IndexMap",
    "IndexSet",
];

/// Returns the unordered-collection name when token `i` is one
/// (`HashMap`, …) — shared by the lexical rule and the taint pass.
pub fn unordered_source(toks: &[Tok], i: usize) -> Option<&str> {
    let t = &toks[i];
    if t.kind == TokKind::Ident && UNORDERED_TYPES.contains(&t.text.as_str()) {
        Some(t.text.as_str())
    } else {
        None
    }
}

fn check_unordered(path: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let t = &toks[i];
    if unordered_source(toks, i).is_some() {
        out.push(Diagnostic::error(
            "no-unordered-iteration",
            path,
            t.line,
            t.col,
            format!(
                "`{}` iterates in nondeterministic (per-process) order; deterministic crates \
                 must use BTreeMap/BTreeSet or a sorted Vec",
                t.text
            ),
        ));
    }
}

fn ident_at(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_at(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

fn path_call(toks: &[Tok], i: usize, head: &str, tails: &[&str]) -> Option<String> {
    if ident_at(toks, i, head) && punct_at(toks, i + 1, ":") && punct_at(toks, i + 2, ":") {
        if let Some(t) = toks.get(i + 3) {
            if t.kind == TokKind::Ident && tails.contains(&t.text.as_str()) {
                return Some(format!("{head}::{}", t.text));
            }
        }
    }
    None
}

/// Returns the ambient-entropy construct name when token `i` starts one
/// (`Instant::now`, `thread_rng`, `env!`, …) — shared by the lexical rule
/// and the taint pass, which also treats `from_entropy` / `rand::random`
/// (the `rng-discipline` matchers) as entropy sources.
pub fn entropy_source(toks: &[Tok], i: usize) -> Option<String> {
    let t = &toks[i];
    if let Some(p) = path_call(toks, i, "Instant", &["now"]) {
        Some(p)
    } else if let Some(p) = path_call(toks, i, "SystemTime", &["now"]) {
        Some(p)
    } else if let Some(p) = path_call(
        toks,
        i,
        "env",
        &["var", "vars", "var_os", "args", "args_os"],
    ) {
        Some(p)
    } else if t.kind == TokKind::Ident && t.text == "thread_rng" {
        Some("thread_rng".into())
    } else if (t.kind == TokKind::Ident && t.text == "option_env" && punct_at(toks, i + 1, "!"))
        || (t.kind == TokKind::Ident && t.text == "env" && punct_at(toks, i + 1, "!"))
    {
        Some(format!("{}!", t.text))
    } else {
        None
    }
}

fn check_entropy(path: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let t = &toks[i];
    if let Some(what) = entropy_source(toks, i) {
        out.push(Diagnostic::error(
            "no-ambient-entropy",
            path,
            t.line,
            t.col,
            format!(
                "`{what}` injects ambient state (wall clock / OS entropy / environment) into a \
                 deterministic crate; thread timing and configuration must come in through \
                 explicit parameters or plan seeds"
            ),
        ));
    }
}

fn check_panic(path: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let t = &toks[i];
    // `.unwrap(` / `.expect(`
    if t.kind == TokKind::Ident
        && (t.text == "unwrap" || t.text == "expect")
        && i > 0
        && punct_at(toks, i - 1, ".")
        && punct_at(toks, i + 1, "(")
    {
        out.push(Diagnostic::error(
            "no-panic-in-libs",
            path,
            t.line,
            t.col,
            format!(
                "`.{}()` can panic in library code; propagate an error, use a total method, or \
                 justify the invariant with `// lint:allow(no-panic-in-libs) -- <why>`",
                t.text
            ),
        ));
        return;
    }
    // `panic!` / `todo!` / `unimplemented!`
    if t.kind == TokKind::Ident
        && matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
        && punct_at(toks, i + 1, "!")
    {
        out.push(Diagnostic::error(
            "no-panic-in-libs",
            path,
            t.line,
            t.col,
            format!("`{}!` is forbidden in library code paths", t.text),
        ));
        return;
    }
    // Indexing by integer literal: `xs[0]` (incl. `xs[0][1]`, `f()[2]`).
    if t.kind == TokKind::Punct
        && t.text == "["
        && i > 0
        && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Int)
        && punct_at(toks, i + 2, "]")
    {
        let prev = &toks[i - 1];
        let indexable = match prev.kind {
            TokKind::Ident => !is_keyword(&prev.text),
            TokKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        };
        if indexable {
            let lit = &toks[i + 1];
            out.push(Diagnostic::error(
                "no-panic-in-libs",
                path,
                lit.line,
                lit.col,
                format!(
                    "indexing with the literal `{}` can panic; use `.first()`/`.get({})` or a \
                     slice pattern, or justify the shape invariant with a lint:allow",
                    lit.text, lit.text
                ),
            ));
        }
    }
}

/// Returns the OS-seeded RNG construct when token `i` is one — shared by
/// the `rng-discipline` lexical rule and the taint pass (an OS-seeded RNG
/// is an entropy source for taint purposes).
pub fn rng_source(toks: &[Tok], i: usize) -> Option<&'static str> {
    let t = &toks[i];
    if t.kind == TokKind::Ident && t.text == "from_entropy" {
        Some("from_entropy")
    } else if path_call(toks, i, "rand", &["random"]).is_some() {
        Some("rand::random")
    } else {
        None
    }
}

fn check_rng(path: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let t = &toks[i];
    if t.kind == TokKind::Ident && t.text == "from_entropy" {
        out.push(Diagnostic::error(
            "rng-discipline",
            path,
            t.line,
            t.col,
            "RNGs in deterministic crates must be built with `seed_from_u64`/`from_seed` from \
             an explicit plan seed, never `from_entropy`"
                .into(),
        ));
        return;
    }
    if path_call(toks, i, "rand", &["random"]).is_some() {
        out.push(Diagnostic::error(
            "rng-discipline",
            path,
            t.line,
            t.col,
            "`rand::random` draws from the thread-local OS-seeded RNG; use an explicitly \
             seeded generator"
                .into(),
        ));
    }
}

/// Iterator sources whose reduction order depends on scheduling. A `sum` /
/// `fold` / `reduce` downstream of one of these re-associates float addition
/// nondeterministically, which would break PR 4's bit-identical guarantee.
const PARALLEL_SOURCES: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_chunks_exact",
    "par_windows",
];

fn check_float(path: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident
        || !matches!(t.text.as_str(), "sum" | "fold" | "reduce")
        || i == 0
        || !punct_at(toks, i - 1, ".")
    {
        return;
    }
    // Walk back through the current expression (bounded by statement
    // punctuation) looking for a parallel source feeding this reduction.
    let mut j = i - 1;
    loop {
        let p = &toks[j];
        if p.kind == TokKind::Punct && matches!(p.text.as_str(), ";" | "{" | "}") {
            break;
        }
        if p.kind == TokKind::Ident && PARALLEL_SOURCES.contains(&p.text.as_str()) {
            out.push(Diagnostic::error(
                "float-association",
                path,
                t.line,
                t.col,
                format!(
                    "`.{}()` over `{}` re-associates floating-point reduction in schedule \
                     order; hot-path reductions must run over slices in fixed order",
                    t.text, p.text
                ),
            ));
            return;
        }
        if j == 0 {
            break;
        }
        j -= 1;
    }
}

/// Numeric types an `as` cast can silently truncate into. `usize`/`isize`
/// are included although they are 64-bit on every supported target: codec
/// byte layouts must not depend on the host's pointer width, so
/// platform-sized casts go through `usize::try_from` like any narrowing.
/// Widening casts (`as u64`, `as u128`, `as f64`, `as i64`) stay legal —
/// they are how codecs put counts on the wire.
const NARROWING_CASTS: &[&str] = &[
    "u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize", "f32",
];

fn check_cast(path: &str, toks: &[Tok], i: usize, out: &mut Vec<Diagnostic>) {
    let t = &toks[i];
    if t.kind != TokKind::Ident || t.text != "as" {
        return;
    }
    let Some(ty) = toks.get(i + 1) else { return };
    if ty.kind == TokKind::Ident && NARROWING_CASTS.contains(&ty.text.as_str()) {
        out.push(Diagnostic::error(
            "no-lossy-cast-in-codecs",
            path,
            t.line,
            t.col,
            format!(
                "`as {}` silently truncates in a wire-codec file; use `{}::try_from` and \
                 surface a typed decode error (or justify a proven bound with a lint:allow)",
                ty.text, ty.text
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        analyze_source("test.rs", src, Policy::strict())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn unwrap_in_string_is_not_flagged() {
        assert!(run("fn f() { let s = \".unwrap()\"; }").is_empty());
    }

    #[test]
    fn unwrap_is_flagged_with_position() {
        let d = run("fn f(x: Option<u8>) {\n    x.unwrap();\n}");
        assert_eq!(rules_of(&d), vec!["no-panic-in-libs"]);
        assert_eq!((d[0].line, d[0].col), (2, 7));
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let d = run("fn f(x: Option<u8>) {\n    // lint:allow(no-panic-in-libs) -- checked by caller\n    x.unwrap();\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_without_reason_is_malformed_and_does_not_suppress() {
        let d =
            run("fn f(x: Option<u8>) {\n    // lint:allow(no-panic-in-libs)\n    x.unwrap();\n}");
        let mut r = rules_of(&d);
        r.sort_unstable();
        assert_eq!(r, vec!["malformed-allow", "no-panic-in-libs"]);
    }

    #[test]
    fn unused_allow_is_a_warning() {
        let d = run("// lint:allow(no-panic-in-libs) -- nothing here\nfn f() {}\n");
        assert_eq!(rules_of(&d), vec!["unused-allow"]);
        assert_eq!(d[0].severity, Severity::Warning);
    }

    #[test]
    fn literal_index_flagged_but_patterns_are_not() {
        let d = run("fn f(v: &[u8]) -> u8 { v[0] }");
        assert_eq!(rules_of(&d), vec!["no-panic-in-libs"]);
        assert!(run("fn f() { let [a, b] = [1u8, 2]; let _ = (a, b); }").is_empty());
        assert!(run("fn t(v: &[u8]) -> u8 { v[idx] }").is_empty());
    }

    #[test]
    fn hashmap_in_cfg_test_is_fine() {
        let src = "#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(run(src).is_empty());
        let d = run("use std::collections::HashMap;\n");
        assert_eq!(rules_of(&d), vec!["no-unordered-iteration"]);
    }

    #[test]
    fn instant_now_flagged() {
        let d = run("fn f() { let _t = Instant::now(); }");
        assert_eq!(rules_of(&d), vec!["no-ambient-entropy"]);
    }

    #[test]
    fn parallel_sum_flagged_sequential_sum_clean() {
        let d = run("fn f(v: &[f64]) -> f64 { v.par_iter().sum() }");
        assert_eq!(rules_of(&d), vec!["float-association"]);
        assert!(run("fn f(v: &[f64]) -> f64 { v.iter().sum() }").is_empty());
        // A parallel source in a *previous* statement does not taint.
        assert!(run("fn f(v: &[f64]) -> f64 { par_iter(v); v.iter().sum() }").is_empty());
    }

    #[test]
    fn narrowing_cast_flagged_widening_clean() {
        let d = run("fn f(n: u64) -> usize { n as usize }");
        assert_eq!(rules_of(&d), vec!["no-lossy-cast-in-codecs"]);
        assert!(run("fn f(n: usize) -> u64 { n as u64 }").is_empty());
        assert!(run("fn f(n: u32) -> u128 { n as u128 }").is_empty());
        // Non-cast `as` (imports) is untouched.
        assert!(run("use std::fmt as f;").is_empty());
    }

    #[test]
    fn allow_covers_proven_bound_cast() {
        let d = run(
            "fn f(n: u64) -> u32 {\n    // lint:allow(no-lossy-cast-in-codecs) -- bounded by frame cap\n    n as u32\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn from_entropy_flagged() {
        let d = run("fn f() { let r = StdRng::from_entropy(); }");
        assert_eq!(rules_of(&d), vec!["rng-discipline"]);
        assert!(run("fn f() { let r = StdRng::seed_from_u64(7); }").is_empty());
    }
}
