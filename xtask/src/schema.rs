//! Wire-format drift guard (`wire-format-drift`).
//!
//! The four hand-rolled codecs (WAL records, snapshots, proto frames, the
//! dedup-window export) promise byte-identical replay across crashes and
//! sockets. Their encode/decode symmetry is tested at runtime, but a field
//! added to `encode` and `decode` *consistently* still silently breaks
//! compatibility with bytes already on disk — no test notices, because
//! both sides changed together.
//!
//! This pass makes such changes deliberate: in every `// analyze:codec`
//! file it finds the codec functions (names `encode*`/`decode*`/`put_*`/
//! `get_*`/`frame`/`deframe`/`next_frame`), extracts each one's **op
//! sequence** — the ordered list of wire-primitive calls it makes
//! (`u32`, `raw:8`, `u64::from_le_bytes`, `as:u8`, tag literals…) — and
//! fingerprints it (FNV-1a 64). Fingerprints are compared against the
//! checked-in golden schema (`xtask/wire_schema.json`); any mismatch is an
//! error until the schema is regenerated with
//! `cargo xtask analyze --bless-schema`, which shows up in review as a
//! one-line diff per changed record — the deliberate bump the issue asks
//! for.
//!
//! The op vocabulary is lexical and codec-specific: primitive read/write
//! helpers, buffer ops, composite record helpers, checksum and
//! byte-conversion calls, plus `as:<ty>` casts. An op records its
//! qualifier when path-called (`u32::from_le_bytes`) and its first
//! argument when that is an integer literal (tag bytes: `u8:3`), so both
//! field *order* and tag *values* are covered by the fingerprint.

use std::collections::BTreeMap;

use crate::allow::find_covering;
use crate::diag::Diagnostic;
use crate::graph::Graph;
use crate::lexer::TokKind;

const RULE: &str = "wire-format-drift";

/// Wire-primitive identifiers that count as schema ops when called.
const OP_VOCAB: &[&str] = &[
    // Enc/Dec primitive helpers.
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "i8",
    "i16",
    "i32",
    "i64",
    "f32",
    "f64",
    "raw",
    "take",
    "count",
    // Buffer ops that move wire bytes.
    "push",
    "extend_from_slice",
    // Composite record helpers.
    "put_u64",
    "put_f64",
    "put_resources",
    "put_placement",
    "get_placement",
    "put_transition",
    "get_transition",
    "put_gate_states",
    "get_gate_states",
    "put_disposition",
    "get_disposition",
    // Nested codec entry points.
    "encode",
    "decode",
    "encode_into",
    "decode_from",
    "frame",
    "deframe",
    "next_frame",
    // Integrity and byte conversion.
    "crc32",
    "to_le_bytes",
    "from_le_bytes",
];

/// One fingerprinted codec function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaEntry {
    /// Diagnostic file label.
    pub file: String,
    /// `Type::name` qualified function name.
    pub fn_name: String,
    /// FNV-1a 64 hex over the joined op sequence.
    pub fingerprint: String,
    /// The op sequence itself (kept in the golden file so reviewers can
    /// read *what* changed, not just that something did).
    pub ops: Vec<String>,
    /// Anchor for diagnostics (not serialized).
    pub line: u32,
    /// Anchor column (not serialized).
    pub col: u32,
    /// File index into the graph (not serialized).
    pub file_idx: usize,
}

/// True when a function name marks a codec entry point.
pub fn is_codec_fn(name: &str) -> bool {
    matches!(
        name,
        "encode" | "decode" | "frame" | "deframe" | "next_frame"
    ) || name.starts_with("put_")
        || name.starts_with("get_")
        || name.starts_with("encode_")
        || name.starts_with("decode_")
}

/// Extracts schema entries from every `analyze:codec` file in the graph,
/// sorted by (file, fn).
pub fn extract(g: &Graph) -> Vec<SchemaEntry> {
    let mut out = Vec::new();
    for (id, info) in g.fns.iter().enumerate() {
        let file = &g.files[info.file];
        if !file.is_codec || !is_codec_fn(&info.name) {
            continue;
        }
        let ops = op_sequence(g, id);
        let fingerprint = fnv1a64(&ops.join(","));
        out.push(SchemaEntry {
            file: file.label.clone(),
            fn_name: info.qual_name(),
            fingerprint,
            ops,
            line: info.line,
            col: info.col,
            file_idx: info.file,
        });
    }
    out.sort_by(|a, b| (&a.file, &a.fn_name).cmp(&(&b.file, &b.fn_name)));
    out
}

/// Walks one function body emitting its ordered op sequence.
fn op_sequence(g: &Graph, f: usize) -> Vec<String> {
    let info = &g.fns[f];
    let file = &g.files[info.file];
    let toks = &file.lexed.tokens;
    let (lo, hi) = info.body;
    let mut ops = Vec::new();
    let mut i = lo;
    while i <= hi {
        if file.exempt[i] {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "as" {
            if let Some(ty) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                ops.push(format!("as:{}", ty.text));
                i += 2;
                continue;
            }
        }
        if t.kind == TokKind::Ident
            && OP_VOCAB.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            let mut op = String::new();
            // Qualified form: `u32::from_le_bytes`.
            if i >= 3
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && toks[i - 3].kind == TokKind::Ident
            {
                op.push_str(&toks[i - 3].text);
                op.push_str("::");
            }
            op.push_str(&t.text);
            // Tag literal: `e.u8(3)`.
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Int && toks.get(i + 3).is_some_and(|n| n.text == ")") {
                    op.push(':');
                    op.push_str(&arg.text);
                }
            }
            ops.push(op);
        }
        i += 1;
    }
    ops
}

/// FNV-1a 64-bit hex digest.
fn fnv1a64(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Renders the golden schema file: a JSON array, one entry per line, so
/// codec changes review as single-line diffs.
pub fn render(entries: &[SchemaEntry]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"fn\":\"{}\",\"fingerprint\":\"{}\",\"ops\":\"{}\"}}",
            e.file,
            e.fn_name,
            e.fingerprint,
            e.ops.join(",")
        ));
        out.push_str(if i + 1 == entries.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// Parses a golden schema file back into `(file, fn) -> fingerprint`.
/// Field extraction is by key pattern, tolerant of whitespace-only
/// variation; the file is machine-written so this stays simple.
pub fn parse_golden(text: &str) -> BTreeMap<(String, String), String> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(file) = field(line, "file") else {
            continue;
        };
        let Some(fn_name) = field(line, "fn") else {
            continue;
        };
        let Some(fp) = field(line, "fingerprint") else {
            continue;
        };
        out.insert((file, fn_name), fp);
    }
    out
}

fn field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Compares current entries against the golden text. Returns diagnostics
/// plus used-allow `(file index, allow index)` pairs.
pub fn compare(
    g: &Graph,
    current: &[SchemaEntry],
    golden_text: &str,
    golden_path_label: &str,
) -> (Vec<Diagnostic>, Vec<(usize, usize)>) {
    let golden = parse_golden(golden_text);
    let mut diags = Vec::new();
    let mut used_allows = Vec::new();
    let mut matched: BTreeMap<(String, String), bool> =
        golden.keys().map(|k| (k.clone(), false)).collect();

    for e in current {
        let key = (e.file.clone(), e.fn_name.clone());
        let finding = match golden.get(&key) {
            Some(fp) if *fp == e.fingerprint => {
                matched.insert(key, true);
                continue;
            }
            Some(fp) => {
                matched.insert(key, true);
                format!(
                    "wire format of `{}` changed: fingerprint {} != golden {} (ops now: {}); \
                     if the change is deliberate, regenerate the schema with \
                     `cargo xtask analyze --bless-schema` and commit the diff",
                    e.fn_name,
                    e.fingerprint,
                    fp,
                    e.ops.join(",")
                )
            }
            None => format!(
                "codec fn `{}` is not in the golden wire schema ({golden_path_label}); \
                 add it with `cargo xtask analyze --bless-schema`",
                e.fn_name
            ),
        };
        let file = &g.files[e.file_idx];
        if let Some(ai) = find_covering(&file.allows, &file.lexed.comments, RULE, e.line) {
            used_allows.push((e.file_idx, ai));
            continue;
        }
        diags.push(Diagnostic::error(RULE, &e.file, e.line, e.col, finding));
    }

    for ((file, fn_name), was_matched) in &matched {
        if !was_matched {
            diags.push(Diagnostic::error(
                RULE,
                file,
                1,
                1,
                format!(
                    "golden wire schema lists `{fn_name}` but no such codec fn exists; \
                     deleting a codec is a compatibility break — if deliberate, \
                     regenerate with `cargo xtask analyze --bless-schema`"
                ),
            ));
        }
    }
    (diags, used_allows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, FileCtx};
    use crate::policy::Policy;
    use std::collections::BTreeSet;

    fn graph_of(src: &str) -> Graph {
        let ctx = FileCtx::new("t.rs".into(), "fixture".into(), Policy::strict(), src);
        let mut vis = BTreeMap::new();
        vis.insert(
            "fixture".to_string(),
            BTreeSet::from(["fixture".to_string()]),
        );
        build(vec![ctx], &vis).0
    }

    const CODEC: &str = "// analyze:codec -- test\n\
        struct R;\n\
        impl R {\n\
        fn encode(&self, e: &mut Enc) { e.u8(1); e.u32(self.n); e.raw(&self.bytes); }\n\
        fn decode(d: &mut Dec) -> R { let tag = d.u8(); let n = d.u32(); R }\n\
        }\n";

    #[test]
    fn ops_capture_order_qualifiers_and_tag_literals() {
        let g = graph_of(CODEC);
        let entries = extract(&g);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].fn_name, "R::decode");
        assert_eq!(entries[1].fn_name, "R::encode");
        assert_eq!(entries[1].ops, vec!["u8:1", "u32", "raw"]);
        assert_eq!(entries[0].ops, vec!["u8", "u32"]);
    }

    #[test]
    fn field_reorder_changes_fingerprint_and_is_flagged() {
        let g = graph_of(CODEC);
        let golden = render(&extract(&g));
        let reordered = CODEC.replace("e.u8(1); e.u32(self.n);", "e.u32(self.n); e.u8(1);");
        let g2 = graph_of(&reordered);
        let (d, _) = compare(&g2, &extract(&g2), &golden, "golden.json");
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "wire-format-drift");
        assert!(d[0].message.contains("R::encode"), "{}", d[0].message);
    }

    #[test]
    fn unchanged_codec_is_clean_and_roundtrips_through_render() {
        let g = graph_of(CODEC);
        let entries = extract(&g);
        let golden = render(&entries);
        let (d, _) = compare(&g, &entries, &golden, "golden.json");
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(parse_golden(&golden).len(), 2);
    }

    #[test]
    fn deleted_codec_fn_is_flagged_from_golden() {
        let g = graph_of(CODEC);
        let golden = render(&extract(&g));
        let shrunk = CODEC.replace(
            "fn decode(d: &mut Dec) -> R { let tag = d.u8(); let n = d.u32(); R }\n",
            "",
        );
        let g2 = graph_of(&shrunk);
        let (d, _) = compare(&g2, &extract(&g2), &golden, "golden.json");
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("R::decode"), "{}", d[0].message);
    }

    #[test]
    fn casts_are_part_of_the_fingerprint() {
        let g = graph_of(
            "// analyze:codec -- test\n\
             fn encode_len(e: &mut Enc, n: usize) { e.u32(n as u32); }\n",
        );
        let entries = extract(&g);
        assert_eq!(entries[0].ops, vec!["u32", "as:u32"]);
    }
}
