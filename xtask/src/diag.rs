//! Diagnostics and their machine- and human-readable renderings.

use std::fmt::Write as _;

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported but does not affect the exit code (stale `lint:allow`).
    Warning,
    /// Fails the lint run.
    Error,
}

/// One finding, anchored to a source position.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable rule id (`no-panic-in-libs`, …).
    pub rule: String,
    /// Path of the offending file, relative to the workspace root.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human message: what matched and what to do instead.
    pub message: String,
    /// Whether this finding fails the run.
    pub severity: Severity,
}

impl Diagnostic {
    /// An error-severity finding.
    pub fn error(rule: &str, path: &str, line: u32, col: u32, message: String) -> Self {
        Diagnostic {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            col,
            message,
            severity: Severity::Error,
        }
    }
}

/// Sorts diagnostics into the canonical report order: path, line, column,
/// rule. Two runs over the same tree produce byte-identical reports.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
}

/// Renders diagnostics as a JSON array (stable field order, sorted input).
///
/// Hand-rolled because the analyzer is dependency-free; the escaping covers
/// everything that can appear in paths and messages.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"severity\":\"{}\",\"message\":\"{}\"}}",
            escape(&d.rule),
            escape(&d.path),
            d.line,
            d.col,
            match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            },
            escape(&d.message),
        );
    }
    out.push(']');
    out
}

/// Renders diagnostics for terminals: `path:line:col: [rule] message`.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let sev = match d.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        let _ = writeln!(
            out,
            "{}:{}:{}: {sev}: [{}] {}",
            d.path, d.line, d.col, d.rule, d.message
        );
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_escaped_and_ordered() {
        let mut d = vec![
            Diagnostic::error("b-rule", "z.rs", 1, 1, "two".into()),
            Diagnostic::error("a-rule", "a.rs", 2, 5, "say \"hi\"\n".into()),
        ];
        sort(&mut d);
        let json = render_json(&d);
        assert!(json.starts_with("[{\"rule\":\"a-rule\",\"path\":\"a.rs\",\"line\":2,\"col\":5"));
        assert!(json.contains("say \\\"hi\\\"\\n"));
    }
}
