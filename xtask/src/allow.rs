//! The `lint:allow` escape hatch.
//!
//! A violation can be silenced only with an inline directive that names the
//! rule *and* carries a written justification:
//!
//! ```text
//! // lint:allow(no-panic-in-libs) -- joining a scoped thread: propagating a
//! // child panic is the only sound behavior.
//! let left = handle.join().expect("branch panicked");
//! ```
//!
//! The directive applies to its own line and to the next source line, so it
//! can sit either trailing the offending expression or on the line above it.
//! A directive with no `-- reason` text is itself a violation
//! (`malformed-allow`) that cannot be silenced, which is what makes the
//! acceptance rule "every allow carries a written reason" machine-checked.
//! Directives that silence nothing are reported as `unused-allow` warnings so
//! stale hatches do not accumulate.

use crate::lexer::Comment;

/// One parsed `lint:allow` directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule ids named in the parentheses.
    pub rules: Vec<String>,
    /// Justification text after `--` (trimmed). `None` when missing/empty.
    pub reason: Option<String>,
    /// 1-based line the directive appears on.
    pub line: u32,
    /// Set by the rule engine when some diagnostic was silenced by this
    /// directive; unused directives are reported.
    pub used: bool,
}

/// Extracts every `lint:allow` directive from the file's comments.
///
/// The justification may continue on immediately following comment lines
/// (a wrapped sentence), which are absorbed into the reason.
pub fn parse_allows(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out: Vec<AllowDirective> = Vec::new();
    for (idx, c) in comments.iter().enumerate() {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("lint:allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let (rules, tail) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((inside, tail)) => {
                let rules: Vec<String> = inside
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                (rules, tail)
            }
            None => (Vec::new(), rest),
        };
        let mut reason = tail
            .trim_start()
            .strip_prefix("--")
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        // Absorb wrapped justification lines: comments on consecutive lines
        // directly below the directive, as long as a reason was started.
        if !reason.is_empty() {
            for (expect_line, follow) in (c.line + 1..).zip(&comments[idx + 1..]) {
                if follow.line != expect_line || follow.text.trim().starts_with("lint:allow") {
                    break;
                }
                reason.push(' ');
                reason.push_str(follow.text.trim());
            }
        }
        out.push(AllowDirective {
            rules,
            reason: if reason.is_empty() {
                None
            } else {
                Some(reason)
            },
            line: c.line,
            used: false,
        });
    }
    out
}

/// Returns the index of a directive covering `rule` at `line`, if any.
///
/// A directive covers its own line and, when it is followed by wrapped
/// justification comments, the first source line after the comment block.
pub fn find_covering(
    allows: &[AllowDirective],
    comments: &[Comment],
    rule: &str,
    line: u32,
) -> Option<usize> {
    allows.iter().position(|a| {
        if !a.rules.iter().any(|r| r == rule) {
            return false;
        }
        if a.line == line {
            return true;
        }
        // Directive above the code: every comment line between the directive
        // and `line` must be part of its continuation block.
        if a.line < line {
            let continuous = (a.line + 1..line).all(|l| comments.iter().any(|c| c.line == l));
            return continuous;
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_rule_and_reason() {
        let l = lex("x(); // lint:allow(no-panic-in-libs) -- checked above\n");
        let a = parse_allows(&l.comments);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].rules, vec!["no-panic-in-libs"]);
        assert_eq!(a[0].reason.as_deref(), Some("checked above"));
    }

    #[test]
    fn missing_reason_is_none() {
        let l = lex("// lint:allow(no-panic-in-libs)\nx();");
        let a = parse_allows(&l.comments);
        assert_eq!(a[0].reason, None);
    }

    #[test]
    fn wrapped_reason_extends_coverage() {
        let src = "// lint:allow(rng-discipline) -- the seed comes from the\n// chaos plan, not ambient entropy.\nlet r = f();\n";
        let l = lex(src);
        let a = parse_allows(&l.comments);
        assert_eq!(
            a[0].reason.as_deref(),
            Some("the seed comes from the chaos plan, not ambient entropy.")
        );
        assert_eq!(find_covering(&a, &l.comments, "rng-discipline", 3), Some(0));
        assert_eq!(find_covering(&a, &l.comments, "rng-discipline", 4), None);
    }

    #[test]
    fn multiple_rules_in_one_directive() {
        let l = lex("// lint:allow(a, b) -- why\nx();");
        let a = parse_allows(&l.comments);
        assert_eq!(a[0].rules, vec!["a", "b"]);
        assert_eq!(find_covering(&a, &l.comments, "b", 2), Some(0));
    }
}
