//! Workspace discovery: which files get scanned, under which policy.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::policy::{policy_for, Policy};
use crate::rules::analyze_source;

/// One file scheduled for analysis.
#[derive(Debug)]
pub struct Target {
    /// Absolute (or root-relative) path on disk.
    pub path: PathBuf,
    /// Path label used in diagnostics, relative to the workspace root.
    pub label: String,
    /// Active policy.
    pub policy: Policy,
}

/// Collects every analyzable file of the workspace rooted at `root`:
/// `crates/<name>/src/**/*.rs` plus the facade crate's `src/`.
///
/// Integration tests (`crates/*/tests/`) and benches are intentionally not
/// walked — test code may unwrap. `#[cfg(test)]` modules inside `src/` are
/// exempted token-wise by the scanner instead.
///
/// Files are returned in sorted path order so reports are byte-identical
/// across runs and machines.
pub fn workspace_targets(root: &Path) -> io::Result<Vec<Target>> {
    let mut targets = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    crate_names.sort();

    for name in &crate_names {
        let src = crates_dir.join(name).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&src, &mut files)?;
        files.sort();
        for f in files {
            let rel_in_crate = rel_label(&f, &crates_dir.join(name));
            let policy = policy_for(name, &rel_in_crate);
            targets.push(Target {
                label: rel_label(&f, root),
                path: f,
                policy,
            });
        }
    }

    // The facade crate at the workspace root (src/lib.rs re-exports).
    let facade = root.join("src");
    if facade.is_dir() {
        let mut files = Vec::new();
        walk_rs(&facade, &mut files)?;
        files.sort();
        for f in files {
            let rel_in_crate = rel_label(&f, root);
            let policy = policy_for("goldilocks-root", &rel_in_crate);
            targets.push(Target {
                label: rel_label(&f, root),
                path: f,
                policy,
            });
        }
    }

    Ok(targets)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_label(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Analyzes one target file.
pub fn analyze_target(t: &Target) -> io::Result<Vec<Diagnostic>> {
    let src = fs::read_to_string(&t.path)?;
    Ok(analyze_source(&t.label, &src, t.policy))
}
