//! Workspace discovery: which files get scanned, under which policy.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::policy::{policy_for, Policy};
use crate::rules::analyze_source;

/// One file scheduled for analysis.
#[derive(Debug)]
pub struct Target {
    /// Absolute (or root-relative) path on disk.
    pub path: PathBuf,
    /// Path label used in diagnostics, relative to the workspace root.
    pub label: String,
    /// Workspace crate the file belongs to (directory name under `crates/`,
    /// `goldilocks-root` for the facade, `fixture` for explicit-path runs).
    /// The call-graph passes use this to scope cross-file resolution to the
    /// crate dependency graph.
    pub crate_name: String,
    /// Active policy.
    pub policy: Policy,
}

/// Collects every analyzable file of the workspace rooted at `root`:
/// `crates/<name>/src/**/*.rs` plus the facade crate's `src/`.
///
/// Integration tests (`crates/*/tests/`) and benches are intentionally not
/// walked — test code may unwrap. `#[cfg(test)]` modules inside `src/` are
/// exempted token-wise by the scanner instead.
///
/// Files are returned in sorted path order so reports are byte-identical
/// across runs and machines.
pub fn workspace_targets(root: &Path) -> io::Result<Vec<Target>> {
    let mut targets = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    crate_names.sort();

    for name in &crate_names {
        let src = crates_dir.join(name).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&src, &mut files)?;
        files.sort();
        for f in files {
            let rel_in_crate = rel_label(&f, &crates_dir.join(name));
            let policy = policy_for(name, &rel_in_crate);
            targets.push(Target {
                label: rel_label(&f, root),
                path: f,
                crate_name: name.clone(),
                policy,
            });
        }
    }

    // The facade crate at the workspace root (src/lib.rs re-exports).
    let facade = root.join("src");
    if facade.is_dir() {
        let mut files = Vec::new();
        walk_rs(&facade, &mut files)?;
        files.sort();
        for f in files {
            let rel_in_crate = rel_label(&f, root);
            let policy = policy_for("goldilocks-root", &rel_in_crate);
            targets.push(Target {
                label: rel_label(&f, root),
                path: f,
                crate_name: "goldilocks-root".into(),
                policy,
            });
        }
    }

    Ok(targets)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_label(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Walks upward from `start` to the directory containing the workspace's
/// `Cargo.toml` + `crates/`, so the xtask commands work from any subdir.
pub fn locate_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("cannot resolve {}: {e}", start.display()))?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml + crates/) at or above {}",
                start.display()
            ));
        }
    }
}

/// Analyzes one target file.
pub fn analyze_target(t: &Target) -> io::Result<Vec<Diagnostic>> {
    let src = fs::read_to_string(&t.path)?;
    Ok(analyze_source(&t.label, &src, t.policy))
}

/// Computes, per workspace crate, the set of crates visible to it: itself
/// plus the transitive closure of its `goldilocks-*` dependencies, read
/// from each crate's `Cargo.toml`. The call-graph passes use this to keep
/// name-based resolution from inventing edges the compiler would reject
/// (e.g. a `partition` function can never call into `sim`).
pub fn crate_visibility(root: &Path) -> io::Result<BTreeMap<String, BTreeSet<String>>> {
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let crates_dir = root.join("crates");
    let mut names: Vec<String> = Vec::new();
    for entry in fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    for name in &names {
        let manifest = crates_dir.join(name).join("Cargo.toml");
        let deps = match fs::read_to_string(&manifest) {
            Ok(text) => goldilocks_deps(&text),
            Err(_) => BTreeSet::new(),
        };
        direct.insert(name.clone(), deps);
    }
    // The facade crate at the root depends on everything it re-exports.
    if let Ok(text) = fs::read_to_string(root.join("Cargo.toml")) {
        direct.insert("goldilocks-root".into(), goldilocks_deps(&text));
    }

    // Transitive closure (the graph is tiny; a fixpoint sweep is fine).
    let mut visible: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (name, deps) in &direct {
        let mut seen: BTreeSet<String> = deps.clone();
        seen.insert(name.clone());
        loop {
            let mut grew = false;
            for dep in seen.clone() {
                if let Some(dd) = direct.get(&dep) {
                    for d in dd {
                        grew |= seen.insert(d.clone());
                    }
                }
            }
            if !grew {
                break;
            }
        }
        visible.insert(name.clone(), seen);
    }
    Ok(visible)
}

/// Extracts `goldilocks-<name>` dependency names (without the prefix) from a
/// manifest's text. Dev-dependencies are included — over-approximating
/// visibility is safe for resolution scoping.
fn goldilocks_deps(manifest: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("goldilocks-") {
            if let Some(dep) = rest.split(['.', ' ', '=']).next() {
                if !dep.is_empty() {
                    out.insert(dep.to_string());
                }
            }
        }
    }
    out
}
