//! The per-crate policy table: which invariants apply where.
//!
//! Each rule protects a dynamic guarantee an earlier PR established; the
//! table records which crates carry that guarantee. Tests, benches and
//! `#[cfg(test)]` modules are always exempt (convenience code may unwrap);
//! the split below is about *shipping* code only.

/// Which rules are active for one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct Policy {
    /// `no-unordered-iteration`: HashMap/HashSet banned.
    pub no_unordered_iteration: bool,
    /// `no-ambient-entropy`: wall clocks, thread_rng, env reads banned.
    pub no_ambient_entropy: bool,
    /// `no-panic-in-libs`: unwrap/expect/panic!/todo!/literal-index banned.
    pub no_panic: bool,
    /// `rng-discipline`: RNGs must be constructed from explicit seeds.
    pub rng_discipline: bool,
    /// `float-association`: parallel float reductions banned (hot path).
    pub float_association: bool,
    /// `no-lossy-cast-in-codecs`: narrowing `as` casts banned (wire codecs).
    pub no_lossy_cast: bool,
}

impl Policy {
    /// Every rule on — used for explicit-path runs (fixture self-tests).
    pub fn strict() -> Self {
        Policy {
            no_unordered_iteration: true,
            no_ambient_entropy: true,
            no_panic: true,
            rng_discipline: true,
            float_association: true,
            no_lossy_cast: true,
        }
    }

    /// True when at least one rule is active.
    pub fn any(&self) -> bool {
        self.no_unordered_iteration
            || self.no_ambient_entropy
            || self.no_panic
            || self.rng_discipline
            || self.float_association
            || self.no_lossy_cast
    }
}

/// Crates whose observable behavior must replay byte-identically: the
/// parallel lineup engine (PR 3), the allocation-free partitioner hot path
/// (PR 4), and the WAL crash-replay control plane (PR 2) all promise exact
/// reproducibility, so a stray hash-order iteration or ambient clock read
/// anywhere in these crates is a correctness bug even when every current
/// test passes.
///
/// `workload` is included deliberately although the issue's minimum list
/// leaves it out: seeded workload generation feeds the container graph, and
/// hash-order edge insertion there changes partitions across *processes*
/// (this PR fixed exactly such a case in `Workload::container_graph`).
///
/// `service` stays here with its transport layer included — `server.rs`,
/// `client.rs` and `simnet.rs` are deliberately clock-free (timeouts are
/// counted in OS-enforced poll intervals, jitter comes from seeded
/// SplitMix64 streams), so the sim transport replays byte-identically and
/// even the TCP path carries no ambient entropy. No `lint:allow` escapes
/// are granted to transport code.
const DETERMINISTIC_CRATES: &[&str] = &[
    "partition",
    "core",
    "sim",
    "placement",
    "power",
    "topology",
    "cluster",
    "workload",
    "service",
];

/// Files on the partitioner and metering hot paths where float reductions
/// must keep a fixed association order: the partitioner's slice order (PR 4)
/// and the metering engine's chunk-order shard/reduce contract (partials
/// combined in ascending chunk index, so the result is a function of the
/// chunk size alone, never the thread count).
const FLOAT_GUARD_FILES: &[(&str, &str)] = &[
    ("partition", "src/refine.rs"),
    ("partition", "src/recursive.rs"),
    ("partition", "src/parallel.rs"),
    ("partition", "src/coarsen.rs"),
    ("partition", "src/quality.rs"),
    ("partition", "src/balance.rs"),
    ("sim", "src/metering.rs"),
    // The warm epoch loop (PR 9): arena refill, incremental graph builds
    // and the synthetic load stream all feed float vertex weights into the
    // byte-identity wall, so their reductions must stay schedule-free too.
    ("workload", "src/arena.rs"),
    ("workload", "src/graph_cache.rs"),
    ("workload", "src/streaming.rs"),
];

/// Hand-rolled wire-codec files: every byte written here must replay
/// byte-identically after a crash (WAL, snapshots) or across a socket
/// (proto frames, the dedup-window export embedded in service snapshots).
/// A silent `as` truncation in one of these files corrupts the wire without
/// failing any type check, so narrowing casts are banned: lengths travel
/// through `usize::try_from` (or a checked helper) and surface as typed
/// decode errors instead.
const CODEC_FILES: &[(&str, &str)] = &[
    ("cluster", "src/wal.rs"),
    ("cluster", "src/snapshot.rs"),
    ("service", "src/proto.rs"),
    ("service", "src/dedup.rs"),
];

/// Resolves the policy for `crate_name` + `rel_path` (path inside the crate,
/// e.g. `src/refine.rs`).
///
/// - Deterministic crates get every determinism rule plus the panic ban.
/// - `bench` keeps the panic ban (its bins must fail with proper usage
///   errors, not backtraces) but may read clocks and `std::env::args` —
///   timing harnesses are its purpose.
/// - The facade crate at the workspace root re-exports only; it still gets
///   the full deterministic policy.
pub fn policy_for(crate_name: &str, rel_path: &str) -> Policy {
    let deterministic =
        DETERMINISTIC_CRATES.contains(&crate_name) || crate_name == "goldilocks-root";
    Policy {
        no_unordered_iteration: deterministic,
        no_ambient_entropy: deterministic,
        no_panic: true,
        rng_discipline: deterministic,
        float_association: FLOAT_GUARD_FILES
            .iter()
            .any(|(c, f)| *c == crate_name && *f == rel_path),
        no_lossy_cast: CODEC_FILES
            .iter()
            .any(|(c, f)| *c == crate_name && *f == rel_path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_may_read_clocks_but_not_panic() {
        let p = policy_for("bench", "src/bin/fig13_largescale.rs");
        assert!(!p.no_ambient_entropy);
        assert!(p.no_panic);
        assert!(!p.no_unordered_iteration);
    }

    #[test]
    fn service_transport_layer_is_fully_deterministic() {
        // The socket edge gets no special dispensation: the TCP server,
        // the client retry loop, and the sim fabric are all held to the
        // full determinism policy (clock-free by design).
        for file in [
            "src/server.rs",
            "src/client.rs",
            "src/simnet.rs",
            "src/dedup.rs",
        ] {
            let p = policy_for("service", file);
            assert!(p.no_ambient_entropy, "{file} must ban ambient entropy");
            assert!(
                p.no_unordered_iteration,
                "{file} must ban hash-order iteration"
            );
            assert!(p.no_panic, "{file} must be panic-free");
            assert!(p.rng_discipline, "{file} must use seeded RNGs");
        }
    }

    #[test]
    fn codec_files_ban_lossy_casts() {
        assert!(policy_for("cluster", "src/wal.rs").no_lossy_cast);
        assert!(policy_for("cluster", "src/snapshot.rs").no_lossy_cast);
        assert!(policy_for("service", "src/proto.rs").no_lossy_cast);
        assert!(policy_for("service", "src/dedup.rs").no_lossy_cast);
        assert!(!policy_for("cluster", "src/lib.rs").no_lossy_cast);
        assert!(!policy_for("sim", "src/metering.rs").no_lossy_cast);
    }

    #[test]
    fn partition_hot_path_gets_float_guard() {
        assert!(policy_for("partition", "src/refine.rs").float_association);
        assert!(!policy_for("partition", "src/graph.rs").float_association);
        assert!(policy_for("partition", "src/graph.rs").no_unordered_iteration);
    }

    #[test]
    fn warm_epoch_loop_gets_float_guard_and_full_determinism() {
        for file in ["src/arena.rs", "src/graph_cache.rs", "src/streaming.rs"] {
            let p = policy_for("workload", file);
            assert!(p.float_association, "{file} feeds the byte-identity wall");
            assert!(p.no_unordered_iteration, "{file}");
            assert!(p.no_panic, "{file}");
            assert!(p.rng_discipline, "{file}");
        }
        assert!(!policy_for("workload", "src/workload.rs").float_association);
    }

    #[test]
    fn metering_engine_gets_float_guard_and_full_determinism() {
        let p = policy_for("sim", "src/metering.rs");
        assert!(p.float_association, "sharded reduce must keep chunk order");
        assert!(p.no_panic, "worker failure must degrade, not panic");
        assert!(p.no_unordered_iteration);
        assert!(!policy_for("sim", "src/report.rs").float_association);
    }
}
