//! Workspace symbol table and call graph for `cargo xtask analyze`.
//!
//! The semantic passes (determinism taint, zero-alloc enforcement) need to
//! reason *across* function boundaries, which the per-file lexical rules
//! cannot. This module parses every target file's token stream into a
//! function table and a conservative call graph:
//!
//! - **Functions** are found by `fn <name>` with brace-matched bodies;
//!   `impl Type` context is tracked so methods get qualified names
//!   (`Wal::append`). `#[cfg(test)]` regions are skipped entirely.
//! - **Call references** are `name(`, `Type::name(` / `module::name(`, and
//!   `.name(` patterns inside bodies, plus `Type::name` path references
//!   (function pointers like `resize_with(n, ChunkScratch::default)`).
//! - **Resolution** is by name, scoped by the workspace crate dependency
//!   graph ([`crate::workspace::crate_visibility`]): a call in crate A can
//!   only resolve to functions in crates A actually depends on, which keeps
//!   the over-approximation honest (a `partition` function can never
//!   "reach" `bench` timing code). Qualified calls additionally require a
//!   matching `impl` context, and `self`-less free calls only match free
//!   functions.
//!
//! The graph is deliberately over-approximate (method calls resolve by name
//! alone — we have no type information) and never under-approximate for
//! workspace-internal calls, which is the right polarity for the passes
//! built on it: taint and allocation findings are *reachability* claims.
//!
//! ## Registration annotations
//!
//! Hot paths, ordering-sensitive sinks and codec files are registered in
//! the source itself with comment directives the analyzer parses:
//!
//! ```text
//! // analyze:hot-path -- warm metering core; must not allocate
//! // analyze:sink(wal-append) -- WAL bytes must replay byte-identically
//! // analyze:codec -- file-level: every encode/decode here is fingerprinted
//! ```
//!
//! A directive attaches to the next function declared after it (the codec
//! form attaches to the file). So the registry cannot silently rot, a
//! built-in table ([`REQUIRED_HOT_PATHS`], [`REQUIRED_SINKS`],
//! [`REQUIRED_CODECS`]) lists the registrations the workspace must carry;
//! a missing one is a `registry-drift` error.

use std::collections::{BTreeMap, BTreeSet};

use crate::allow::{parse_allows, AllowDirective};
use crate::diag::Diagnostic;
use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use crate::policy::Policy;
use crate::scanner::{is_keyword, scan};

/// Hot-path registrations the workspace must carry: `(file label suffix,
/// function name)`. These are the warm cores of the paper's steady-state
/// epoch loop — the entry points (`meter_epoch`, `partition_kway_in`)
/// allocate deliberately on their cold setup paths, so the registry pins
/// the inner functions those paths converge on when warm.
pub const REQUIRED_HOT_PATHS: &[(&str, &str)] = &[
    ("crates/sim/src/metering.rs", "meter_flows"),
    ("crates/partition/src/refine.rs", "refine_in_place"),
    ("crates/workload/src/arena.rs", "set_prefix"),
];

/// Ordering-sensitive sink registrations the workspace must carry:
/// `(file label suffix, function name, sink label)`.
pub const REQUIRED_SINKS: &[(&str, &str, &str)] = &[
    ("crates/cluster/src/wal.rs", "append", "wal-append"),
    (
        "crates/cluster/src/wal.rs",
        "append_with_fault",
        "wal-append",
    ),
    ("crates/sim/src/report.rs", "runs_to_csv", "report-emit"),
    ("crates/sim/src/report.rs", "chaos_to_csv", "report-emit"),
    (
        "crates/sim/src/report.rs",
        "service_soak_to_csv",
        "report-emit",
    ),
    ("crates/service/src/proto.rs", "frame", "proto-encode"),
    (
        "crates/partition/src/bisect.rs",
        "bisect_with_seed",
        "partition-seed",
    ),
];

/// Codec-file registrations the workspace must carry (file label suffixes);
/// the wire-format drift guard fingerprints every encode/decode in these.
pub const REQUIRED_CODECS: &[&str] = &[
    "crates/cluster/src/wal.rs",
    "crates/cluster/src/snapshot.rs",
    "crates/service/src/proto.rs",
    "crates/service/src/dedup.rs",
];

/// One `// analyze:` registration directive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnnKind {
    /// `analyze:hot-path` — next function's transitive call graph must be
    /// allocation-free.
    HotPath,
    /// `analyze:sink(<label>)` — next function is ordering-sensitive; taint
    /// reaching it is an error.
    Sink(String),
    /// `analyze:codec` — the file's encode/decode pairs are fingerprinted
    /// against the golden wire schema.
    Codec,
}

/// A parsed annotation with its source line.
#[derive(Clone, Debug)]
pub struct Annotation {
    /// What is being registered.
    pub kind: AnnKind,
    /// 1-based line of the directive comment.
    pub line: u32,
}

/// One analyzable file with everything the passes need.
#[derive(Debug)]
pub struct FileCtx {
    /// Diagnostic path label.
    pub label: String,
    /// Owning workspace crate (resolution scope).
    pub crate_name: String,
    /// Active lexical policy.
    pub policy: Policy,
    /// Token stream + comments.
    pub lexed: Lexed,
    /// Per-token test-exemption flags.
    pub exempt: Vec<bool>,
    /// Parsed `lint:allow` directives (shared with the lexical rules).
    pub allows: Vec<AllowDirective>,
    /// Parsed `analyze:` registration directives.
    pub annotations: Vec<Annotation>,
    /// True when the file carries an `analyze:codec` marker.
    pub is_codec: bool,
    /// Lines of malformed `analyze:` directives (reported by [`build`]).
    malformed_annotations: Vec<u32>,
}

impl FileCtx {
    /// Lexes and pre-scans one file.
    pub fn new(label: String, crate_name: String, policy: Policy, src: &str) -> FileCtx {
        let lexed = lex(src);
        let exempt = scan(&lexed.tokens).exempt;
        let allows = parse_allows(&lexed.comments);
        let (annotations, malformed) = parse_annotations(&lexed.comments);
        let is_codec = annotations.iter().any(|a| a.kind == AnnKind::Codec);
        FileCtx {
            label,
            crate_name,
            policy,
            lexed,
            exempt,
            allows,
            annotations,
            is_codec,
            malformed_annotations: malformed,
        }
    }

    /// Lines of malformed `analyze:` directives (reported as
    /// `registry-drift` errors by [`build`]).
    pub fn malformed_annotation_lines(&self) -> &[u32] {
        &self.malformed_annotations
    }
}

/// One function found in the workspace.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into [`Graph::files`].
    pub file: usize,
    /// Enclosing `impl` type name, when declared in an impl block.
    pub impl_type: Option<String>,
    /// Bare function name.
    pub name: String,
    /// 1-based position of the name token.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Token index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    /// Registered as a zero-alloc hot path.
    pub hot_path: bool,
    /// Registered as an ordering-sensitive sink, with its label.
    pub sink: Option<String>,
}

impl FnInfo {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// How a call reference was written.
#[derive(Clone, Debug, PartialEq, Eq)]
enum CallKind {
    /// `name(...)` — resolves to free functions only.
    Free,
    /// `.name(...)` — resolves to impl functions only.
    Method,
    /// `Qual::name(...)` or `Qual::name` — resolves by qualifier.
    Qualified(String),
}

/// One unresolved call reference inside a function body.
#[derive(Debug)]
struct CallRef {
    caller: usize,
    kind: CallKind,
    name: String,
    line: u32,
    col: u32,
}

/// A resolved call edge with the source position of its (first) call site.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Callee function id.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// 1-based column of the call site.
    pub col: u32,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct Graph {
    /// Every analyzed file.
    pub files: Vec<FileCtx>,
    /// Every function, in (file, declaration) order.
    pub fns: Vec<FnInfo>,
    /// Outgoing resolved edges per function, sorted and deduped by callee.
    pub edges: Vec<Vec<Edge>>,
}

impl Graph {
    /// The tokens of function `f`'s body, with their exemption flags.
    pub fn body_tokens(&self, f: usize) -> (&[Tok], &[bool]) {
        let info = &self.fns[f];
        let (lo, hi) = info.body;
        let file = &self.files[info.file];
        (&file.lexed.tokens[lo..=hi], &file.exempt[lo..=hi])
    }
}

/// Parses `analyze:` directives out of a file's comments.
///
/// Returns the well-formed annotations and the lines of malformed ones
/// (an `analyze:` prefix that is not one of the three known forms).
fn parse_annotations(comments: &[Comment]) -> (Vec<Annotation>, Vec<u32>) {
    let mut out = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix("analyze:") else {
            continue;
        };
        let body = rest.split("--").next().unwrap_or("").trim();
        let kind = if body == "hot-path" {
            Some(AnnKind::HotPath)
        } else if body == "codec" {
            Some(AnnKind::Codec)
        } else if let Some(label) = body.strip_prefix("sink(").and_then(|r| r.strip_suffix(')')) {
            let label = label.trim();
            if label.is_empty() {
                None
            } else {
                Some(AnnKind::Sink(label.to_string()))
            }
        } else {
            None
        };
        match kind {
            Some(kind) => out.push(Annotation { kind, line: c.line }),
            None => malformed.push(c.line),
        }
    }
    (out, malformed)
}

/// Builds the call graph over `files`, resolving calls under `visible`
/// (crate → set of crates it may call into; every crate should at least see
/// itself). Returns the graph plus `registry-drift` diagnostics for
/// malformed annotation directives.
pub fn build(
    files: Vec<FileCtx>,
    visible: &BTreeMap<String, BTreeSet<String>>,
) -> (Graph, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut calls: Vec<CallRef> = Vec::new();

    for (fi, f) in files.iter().enumerate() {
        for &line in f.malformed_annotation_lines() {
            diags.push(Diagnostic::error(
                "registry-drift",
                &f.label,
                line,
                1,
                "malformed `analyze:` directive; expected `analyze:hot-path`, \
                 `analyze:sink(<label>)` or `analyze:codec` (with an optional `-- reason`)"
                    .into(),
            ));
        }
        parse_file(fi, f, &mut fns, &mut calls);
    }

    // Attach hot-path / sink annotations to the first function declared
    // after each directive in the same file.
    for (fi, f) in files.iter().enumerate() {
        for ann in &f.annotations {
            let target = fns
                .iter_mut()
                .filter(|x| x.file == fi && x.line > ann.line)
                .min_by_key(|x| x.line);
            match (&ann.kind, target) {
                (AnnKind::Codec, _) => {}
                (AnnKind::HotPath, Some(t)) => t.hot_path = true,
                (AnnKind::Sink(label), Some(t)) => t.sink = Some(label.clone()),
                (_, None) => diags.push(Diagnostic::error(
                    "registry-drift",
                    &f.label,
                    ann.line,
                    1,
                    "`analyze:` directive is not followed by a function declaration".into(),
                )),
            }
        }
    }

    let edges = resolve(&files, &fns, &calls, visible);
    (Graph { files, fns, edges }, diags)
}

/// Extracts functions and call references from one file's token stream.
fn parse_file(fi: usize, f: &FileCtx, fns: &mut Vec<FnInfo>, calls: &mut Vec<CallRef>) {
    let toks = &f.lexed.tokens;
    let exempt = &f.exempt;
    let mut depth: i64 = 0;
    // (impl type name, depth after its `{`).
    let mut impl_stack: Vec<(String, i64)> = Vec::new();
    // (fn id, depth after its body `{`).
    let mut fn_stack: Vec<(usize, i64)> = Vec::new();
    // A live (non-test) `fn name` header was seen; its body `{` is pending.
    let mut pending_fn: Option<(String, u32, u32, Option<String>)> = None;
    // An impl header was seen; its block `{` is pending.
    let mut pending_impl: Option<String> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                if let Some(name) = pending_impl.take() {
                    impl_stack.push((name, depth));
                } else if let Some((name, line, col, impl_type)) = pending_fn.take() {
                    fns.push(FnInfo {
                        file: fi,
                        impl_type,
                        name,
                        line,
                        col,
                        body: (i, i), // close patched at pop
                        hot_path: false,
                        sink: None,
                    });
                    fn_stack.push((fns.len() - 1, depth));
                }
            }
            (TokKind::Punct, "}") => {
                if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    let (id, _) = fn_stack.pop().unwrap_or((0, 0));
                    if let Some(x) = fns.get_mut(id) {
                        x.body.1 = i;
                    }
                }
                if impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                    impl_stack.pop();
                }
                depth -= 1;
            }
            (TokKind::Punct, ";") => {
                // Bodyless `fn` declaration (trait method, extern).
                pending_fn = None;
            }
            (TokKind::Punct, "#") => {
                // Skip attributes wholesale: their pseudo-calls
                // (`derive(..)`, `cfg(..)`) are not code.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|n| n.text == "!") {
                    j += 1;
                }
                if toks.get(j).is_some_and(|n| n.text == "[") {
                    let mut bracket = 0i64;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "[" => bracket += 1,
                            "]" => {
                                bracket -= 1;
                                if bracket == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
            }
            (TokKind::Ident, "impl") if !exempt[i] && impl_header_position(toks, i) => {
                let (name, next) = parse_impl_header(toks, i);
                pending_impl = name;
                i = next;
                continue;
            }
            (TokKind::Ident, "fn") if !exempt[i] => {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident && !is_keyword(&n.text) {
                        let impl_type = impl_stack.last().map(|(s, _)| s.clone());
                        pending_fn = Some((n.text.clone(), n.line, n.col, impl_type));
                        i += 2;
                        continue;
                    }
                }
            }
            (TokKind::Ident, _) if !exempt[i] && !fn_stack.is_empty() => {
                if let Some((kind, name, line, col, next)) = call_ref_at(toks, i) {
                    if let Some(&(caller, _)) = fn_stack.last() {
                        calls.push(CallRef {
                            caller,
                            kind,
                            name,
                            line,
                            col,
                        });
                    }
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// True when an `impl` token at `i` starts an impl *block* (as opposed to
/// `impl Trait` in type position): it must follow an item boundary.
fn impl_header_position(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = &toks[i - 1];
    match p.kind {
        TokKind::Punct => matches!(p.text.as_str(), ";" | "}" | "{" | "]"),
        TokKind::Ident => p.text == "unsafe",
        _ => false,
    }
}

/// Parses an impl header starting at the `impl` token; returns the self
/// type's last path segment (None for unparseable headers) and the index of
/// the block's `{` token (where the main loop resumes).
fn parse_impl_header(toks: &[Tok], start: usize) -> (Option<String>, usize) {
    let mut j = start + 1;
    // Skip the generic parameter list.
    if toks.get(j).is_some_and(|t| t.text == "<") {
        j = skip_angles(toks, j);
    }
    let mut name: Option<String> = None;
    let mut prev_was_path_sep = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokKind::Punct if t.text == "{" => break,
            TokKind::Punct if t.text == "<" => {
                j = skip_angles(toks, j);
                continue;
            }
            TokKind::Ident if t.text == "for" => {
                // HRTB `for<'a>` keeps the current candidate; a trait impl's
                // `for` resets it (the self type follows).
                if toks.get(j + 1).is_some_and(|n| n.text == "<") {
                    j = skip_angles(toks, j + 1);
                    continue;
                }
                name = None;
                prev_was_path_sep = false;
            }
            TokKind::Ident if t.text == "where" => break,
            TokKind::Ident => {
                if name.is_none() || prev_was_path_sep {
                    name = Some(t.text.clone());
                }
                prev_was_path_sep = false;
            }
            TokKind::Punct if t.text == ":" => {
                prev_was_path_sep = true;
            }
            _ => {}
        }
        j += 1;
    }
    // Resume at the `{` so the main loop opens the block.
    while j < toks.len() && toks[j].text != "{" {
        j += 1;
    }
    (name, j)
}

/// Skips a balanced `<...>` group starting at the `<` token; returns the
/// index after the closing `>`. `->` arrows inside do not close the group.
fn skip_angles(toks: &[Tok], start: usize) -> usize {
    let mut depth = 0i64;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" if j > 0 && toks[j - 1].text == "-" => {}
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            "{" | ";" => return j, // malformed; bail at the item boundary
            _ => {}
        }
        j += 1;
    }
    j
}

/// Recognizes a call reference at ident `i`; returns its kind, name,
/// position, and the token index to resume scanning from.
fn call_ref_at(toks: &[Tok], i: usize) -> Option<(CallKind, String, u32, u32, usize)> {
    let t = &toks[i];
    if is_keyword(&t.text) {
        return None;
    }
    // Macro invocation (`name!`): not a function call. The alloc pass
    // handles banned macros lexically.
    if toks.get(i + 1).is_some_and(|n| n.text == "!") {
        return None;
    }

    let after_dot = i > 0 && toks[i - 1].text == "." && toks[i - 1].kind == TokKind::Punct;
    let after_path = i >= 2
        && toks[i - 1].text == ":"
        && toks[i - 2].text == ":"
        && toks[i - 1].kind == TokKind::Punct;
    let qualifier = if after_path && i >= 3 && toks[i - 3].kind == TokKind::Ident {
        Some(toks[i - 3].text.clone())
    } else {
        None
    };

    // Look past an optional turbofish for the opening paren.
    let mut j = i + 1;
    if toks.get(j).is_some_and(|n| n.text == ":")
        && toks.get(j + 1).is_some_and(|n| n.text == ":")
        && toks.get(j + 2).is_some_and(|n| n.text == "<")
    {
        j = skip_angles(toks, j + 2);
    }
    let is_call = toks.get(j).is_some_and(|n| n.text == "(");

    let kind = if after_path {
        CallKind::Qualified(qualifier.unwrap_or_default())
    } else if after_dot {
        if !is_call {
            return None; // field access
        }
        CallKind::Method
    } else {
        if !is_call {
            return None; // plain identifier
        }
        CallKind::Free
    };
    // Path references without parens are kept only as `Qual::name` — they
    // may be function pointers (`map(heap_vertex)` style usage is written
    // with parens in this codebase; bare local idents are too noisy).
    let resume = if is_call { j } else { i + 1 };
    Some((kind, t.text.clone(), t.line, t.col, resume))
}

/// Method names that collide with ubiquitous `std` container, slice,
/// string, iterator, `Option`/`Result`, and numeric methods. A bare
/// `x.resize(...)`-style call on an unknown receiver is far more likely to
/// hit `std` than a workspace type, so the receiver-less method heuristic
/// never resolves these names; qualified `Type::name(...)` calls still do.
/// The cost is missed edges into same-named workspace methods (e.g. the
/// queue's `push`), which is the right trade: every such method here is
/// neither a registered sink nor on a registered hot path, while the false
/// edges would thread unrelated subsystems into every blame path.
const STD_METHODS: &[&str] = &[
    "all",
    "any",
    "chain",
    "clear",
    "cloned",
    "contains",
    "contains_key",
    "copied",
    "count",
    "drain",
    "entry",
    "enumerate",
    "extend",
    "extend_from_slice",
    "fill",
    "filter",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fold",
    "get",
    "get_mut",
    "insert",
    "iter",
    "iter_mut",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "max_by_key",
    "min",
    "min_by_key",
    "next",
    "peek",
    "pop",
    "position",
    "push",
    "push_str",
    "remove",
    "replace",
    "reserve",
    "resize",
    "resize_with",
    "retain",
    "rev",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split_off",
    "sum",
    "swap",
    "swap_remove",
    "take",
    "truncate",
    "values",
    "values_mut",
    "zip",
];

/// Resolves call references to edges under crate visibility.
fn resolve(
    files: &[FileCtx],
    fns: &[FnInfo],
    calls: &[CallRef],
    visible: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<Vec<Edge>> {
    // Name → candidate fn ids.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(id);
    }
    let file_stem = |fi: usize| -> &str {
        let label = &files[fi].label;
        label
            .rsplit('/')
            .next()
            .unwrap_or(label)
            .strip_suffix(".rs")
            .unwrap_or(label)
    };

    let mut edges: Vec<BTreeMap<usize, (u32, u32)>> = vec![BTreeMap::new(); fns.len()];
    for c in calls {
        let caller = &fns[c.caller];
        let caller_crate = &files[caller.file].crate_name;
        let empty = BTreeSet::new();
        let vis = visible.get(caller_crate).unwrap_or(&empty);
        if matches!(c.kind, CallKind::Method) && STD_METHODS.contains(&c.name.as_str()) {
            continue;
        }
        let Some(cands) = by_name.get(c.name.as_str()) else {
            continue;
        };
        for &cand in cands {
            if cand == c.caller {
                continue;
            }
            let cf = &fns[cand];
            let cand_crate = &files[cf.file].crate_name;
            if cand_crate != caller_crate && !vis.contains(cand_crate) {
                continue;
            }
            let matches = match &c.kind {
                CallKind::Free => cf.impl_type.is_none(),
                CallKind::Method => cf.impl_type.is_some(),
                CallKind::Qualified(q) => match q.as_str() {
                    "Self" => cf.file == caller.file && cf.impl_type == caller.impl_type,
                    "crate" | "self" | "super" => cand_crate == caller_crate,
                    q if q.starts_with(char::is_uppercase) => cf.impl_type.as_deref() == Some(q),
                    q => file_stem(cf.file) == q,
                },
            };
            if matches {
                edges[c.caller].entry(cand).or_insert((c.line, c.col));
            }
        }
    }
    edges
        .into_iter()
        .map(|m| {
            m.into_iter()
                .map(|(callee, (line, col))| Edge { callee, line, col })
                .collect()
        })
        .collect()
}

/// Verifies the built-in registration tables against the graph (workspace
/// mode only): every required hot path, sink and codec file must exist and
/// carry its annotation. This makes the gate tamper-evident — deleting a
/// registration comment (or renaming the function away from it) fails the
/// run instead of silently shrinking coverage.
pub fn check_registry(g: &Graph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let find = |suffix: &str, name: &str| -> Option<&FnInfo> {
        g.fns
            .iter()
            .find(|f| f.name == name && g.files[f.file].label.ends_with(suffix))
    };
    for &(file, name) in REQUIRED_HOT_PATHS {
        match find(file, name) {
            Some(f) if f.hot_path => {}
            Some(f) => out.push(Diagnostic::error(
                "registry-drift",
                &g.files[f.file].label,
                f.line,
                f.col,
                format!(
                    "`{}` is a required zero-alloc hot path but carries no \
                     `// analyze:hot-path` registration",
                    f.qual_name()
                ),
            )),
            None => out.push(Diagnostic::error(
                "registry-drift",
                file,
                1,
                1,
                format!(
                    "required hot path `{name}` not found in `{file}`; if it moved or was \
                     renamed, update the registry table in xtask/src/graph.rs"
                ),
            )),
        }
    }
    for &(file, name, label) in REQUIRED_SINKS {
        match find(file, name) {
            Some(f) if f.sink.as_deref() == Some(label) => {}
            Some(f) => out.push(Diagnostic::error(
                "registry-drift",
                &g.files[f.file].label,
                f.line,
                f.col,
                format!(
                    "`{}` is a required ordering-sensitive sink but carries no \
                     `// analyze:sink({label})` registration",
                    f.qual_name()
                ),
            )),
            None => out.push(Diagnostic::error(
                "registry-drift",
                file,
                1,
                1,
                format!(
                    "required sink `{name}` not found in `{file}`; if it moved or was \
                     renamed, update the registry table in xtask/src/graph.rs"
                ),
            )),
        }
    }
    for &file in REQUIRED_CODECS {
        let found = g.files.iter().find(|f| f.label.ends_with(file));
        match found {
            Some(f) if f.is_codec => {}
            Some(f) => out.push(Diagnostic::error(
                "registry-drift",
                &f.label,
                1,
                1,
                format!(
                    "`{}` is a required wire-codec file but carries no `// analyze:codec` \
                     registration",
                    f.label
                ),
            )),
            None => out.push(Diagnostic::error(
                "registry-drift",
                file,
                1,
                1,
                format!(
                    "required codec file `{file}` not found; if it moved, update the \
                     registry table in xtask/src/graph.rs"
                ),
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(src: &str) -> Graph {
        let ctx = FileCtx::new("t.rs".into(), "fixture".into(), Policy::strict(), src);
        let mut vis = BTreeMap::new();
        vis.insert(
            "fixture".to_string(),
            BTreeSet::from(["fixture".to_string()]),
        );
        build(vec![ctx], &vis).0
    }

    fn edge_names(g: &Graph, caller: &str) -> Vec<String> {
        let id = g.fns.iter().position(|f| f.name == caller).unwrap();
        g.edges[id]
            .iter()
            .map(|e| g.fns[e.callee].qual_name())
            .collect()
    }

    #[test]
    fn free_and_method_calls_resolve() {
        let g = single(
            "fn helper() {}\nstruct S;\nimpl S { fn m(&self) { helper(); } }\nfn top(s: &S) { s.m(); }\n",
        );
        assert_eq!(edge_names(&g, "m"), vec!["helper"]);
        assert_eq!(edge_names(&g, "top"), vec!["S::m"]);
    }

    #[test]
    fn std_colliding_method_names_do_not_resolve_bare_calls() {
        // `v.resize(...)` is almost certainly `Vec::resize`, not the
        // workspace `S::resize` — the heuristic must not invent that edge.
        // The qualified spelling remains explicit and still resolves.
        let g = single(
            "struct S;\nimpl S { fn resize(&self) {} }\n\
             fn top(v: &mut Vec<u8>, s: &S) { v.resize(4, 0); S::resize(s); }\n",
        );
        assert_eq!(edge_names(&g, "top"), vec!["S::resize"]);
    }

    #[test]
    fn qualified_calls_require_matching_impl() {
        let g = single(
            "struct A;\nstruct B;\nimpl A { fn go() {} }\nimpl B { fn go() {} }\nfn top() { A::go(); }\n",
        );
        assert_eq!(edge_names(&g, "top"), vec!["A::go"]);
    }

    #[test]
    fn trait_impl_records_self_type() {
        let g = single("struct S;\nimpl Default for S { fn default() -> S { S } }\n");
        assert_eq!(g.fns[0].qual_name(), "S::default");
    }

    #[test]
    fn impl_trait_in_return_position_is_not_a_block() {
        let g = single(
            "fn inner() {}\nfn f() -> impl Iterator<Item = u8> { inner(); std::iter::empty() }\n",
        );
        assert_eq!(edge_names(&g, "f"), vec!["inner"]);
        assert!(g.fns.iter().all(|f| f.impl_type.is_none()));
    }

    #[test]
    fn test_code_contributes_no_fns_or_edges() {
        let g = single("fn live() {}\n#[cfg(test)]\nmod tests { fn t() { live(); } }\n");
        assert_eq!(g.fns.len(), 1);
        assert!(g.edges[0].is_empty());
    }

    #[test]
    fn annotations_attach_to_next_fn() {
        let g = single(
            "// analyze:hot-path -- test\nfn hot() {}\n// analyze:sink(out) -- test\nfn sink_fn() {}\n",
        );
        assert!(g.fns[0].hot_path);
        assert_eq!(g.fns[1].sink.as_deref(), Some("out"));
    }

    #[test]
    fn fn_pointer_path_reference_is_an_edge() {
        let g = single(
            "struct C;\nimpl C { fn make() -> C { C } }\nfn f(xs: &mut Vec<C>) { xs.resize_with(4, C::make); }\n",
        );
        assert_eq!(edge_names(&g, "f"), vec!["C::make"]);
    }
}
