//! Fixture corpus for the analyzer: each known-bad file must trip exactly
//! its rule (exact ids, lines and columns in the JSON output), the clean
//! file must produce zero findings, and the exit codes must match the CLI
//! contract (0 clean / 1 violations).

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs `xtask lint --json <fixture>` and returns (exit code, stdout).
fn run_lint(name: &str) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--json"])
        .arg(fixture(name))
        .output()
        .expect("spawn xtask binary");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Every `"rule":"…"` value in report order.
fn rules_in(json: &str) -> Vec<String> {
    json.split("\"rule\":\"")
        .skip(1)
        .map(|s| s.split('"').next().unwrap_or("").to_string())
        .collect()
}

/// Every `"line":N,"col":M` span in report order.
fn spans_in(json: &str) -> Vec<(u32, u32)> {
    json.split("\"line\":")
        .skip(1)
        .map(|s| {
            let line = s.split(',').next().unwrap_or("0").parse().unwrap_or(0);
            let col = s
                .split("\"col\":")
                .nth(1)
                .and_then(|c| c.split(',').next())
                .and_then(|c| c.parse().ok())
                .unwrap_or(0);
            (line, col)
        })
        .collect()
}

#[test]
fn clean_fixture_exits_zero_with_no_findings() {
    let (code, json) = run_lint("clean.rs");
    assert_eq!(code, 0, "clean fixture must pass: {json}");
    assert_eq!(json.trim(), "[]");
}

#[test]
fn bad_unordered_iteration_trips_exactly_its_rule() {
    let (code, json) = run_lint("bad_unordered_iteration.rs");
    assert_eq!(code, 1);
    assert_eq!(rules_in(&json), vec!["no-unordered-iteration"; 2], "{json}");
    assert_eq!(spans_in(&json), vec![(5, 23), (8, 20)], "{json}");
}

#[test]
fn bad_ambient_entropy_trips_exactly_its_rule() {
    let (code, json) = run_lint("bad_ambient_entropy.rs");
    assert_eq!(code, 1);
    assert_eq!(rules_in(&json), vec!["no-ambient-entropy"; 2], "{json}");
    assert_eq!(spans_in(&json), vec![(8, 19), (9, 23)], "{json}");
}

#[test]
fn bad_panic_trips_exactly_its_rule_and_respects_exemptions() {
    let (code, json) = run_lint("bad_panic.rs");
    assert_eq!(code, 1);
    // Five live findings; the #[cfg(test)] unwrap and the justified
    // lint:allow'd index are exempt.
    assert_eq!(rules_in(&json), vec!["no-panic-in-libs"; 5], "{json}");
    assert_eq!(
        spans_in(&json),
        vec![(8, 13), (9, 13), (10, 9), (13, 9), (15, 7)],
        "{json}"
    );
}

#[test]
fn bad_rng_discipline_trips_exactly_its_rule() {
    let (code, json) = run_lint("bad_rng_discipline.rs");
    assert_eq!(code, 1);
    assert_eq!(rules_in(&json), vec!["rng-discipline"], "{json}");
    assert_eq!(spans_in(&json), vec![(6, 13)], "{json}");
}

#[test]
fn bad_float_association_trips_exactly_its_rule() {
    let (code, json) = run_lint("bad_float_association.rs");
    assert_eq!(code, 1);
    assert_eq!(rules_in(&json), vec!["float-association"; 2], "{json}");
    assert_eq!(spans_in(&json), vec![(6, 41), (7, 41)], "{json}");
}

#[test]
fn lexically_tricky_fixture_is_clean() {
    // Raw strings (fenced and not), nested block comments, byte strings and
    // lifetime ticks all contain banned spellings as *text*; the lexer must
    // hide every one of them from the rules.
    let (code, json) = run_lint("tricky_clean.rs");
    assert_eq!(code, 0, "tricky fixture must pass: {json}");
    assert_eq!(json.trim(), "[]");
}

#[test]
fn whole_workspace_is_clean() {
    // The same invocation CI runs: the tree itself must satisfy the wall.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("spawn xtask binary");
    assert!(
        out.status.success(),
        "workspace lint failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
