//! Fixture corpus for `xtask analyze`: one known-bad file per semantic pass
//! (taint chain, hot-path allocation, wire drift), each pinned to exact
//! rule ids, lines and columns in the JSON output — plus the self-test that
//! the workspace itself analyzes clean, which is the invocation CI gates on.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs `xtask analyze --json <args>` and returns (exit code, stdout).
fn run_analyze(args: &[&dyn AsRef<std::ffi::OsStr>]) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.args(["analyze", "--json"]);
    for a in args {
        cmd.arg(a.as_ref());
    }
    let out = cmd.output().expect("spawn xtask binary");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

/// Every `"rule":"…"` value in report order.
fn rules_in(json: &str) -> Vec<String> {
    json.split("\"rule\":\"")
        .skip(1)
        .map(|s| s.split('"').next().unwrap_or("").to_string())
        .collect()
}

/// Every `"line":N,"col":M` span in report order.
fn spans_in(json: &str) -> Vec<(u32, u32)> {
    json.split("\"line\":")
        .skip(1)
        .map(|s| {
            let line = s.split(',').next().unwrap_or("0").parse().unwrap_or(0);
            let col = s
                .split("\"col\":")
                .nth(1)
                .and_then(|c| c.split(',').next())
                .and_then(|c| c.parse().ok())
                .unwrap_or(0);
            (line, col)
        })
        .collect()
}

#[test]
fn taint_chain_fixture_blames_the_sink_with_the_full_path() {
    let path = fixture("bad_taint_chain.rs");
    let (code, json) = run_analyze(&[&path]);
    assert_eq!(code, 1);
    assert_eq!(rules_in(&json), vec!["determinism-taint"], "{json}");
    // Anchored at the sink's declaration, not the source.
    assert_eq!(spans_in(&json), vec![(18, 8)], "{json}");
    assert!(json.contains("emit -> mid -> noisy"), "{json}");
    assert!(json.contains("Instant::now"), "{json}");
    // The source's own line is named so the chain is actionable.
    assert!(json.contains("bad_taint_chain.rs:10:5"), "{json}");
}

#[test]
fn hot_alloc_fixture_blames_the_banned_token_with_the_root_path() {
    let path = fixture("bad_hot_alloc.rs");
    let (code, json) = run_analyze(&[&path]);
    assert_eq!(code, 1);
    assert_eq!(rules_in(&json), vec!["zero-alloc-hot-path"], "{json}");
    // Anchored at the allocating construct inside the helper.
    assert_eq!(spans_in(&json), vec![(14, 10)], "{json}");
    assert!(json.contains("Vec::with_capacity"), "{json}");
    assert!(json.contains("warm -> helper"), "{json}");
}

#[test]
fn codec_field_reorder_trips_the_drift_guard() {
    // Stage both versions at the same path so the golden keys (file, fn)
    // line up; the fixture pair documents the before/after shapes.
    let dir = std::env::temp_dir().join(format!("xtask-drift-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let staged = dir.join("codec.rs");
    let golden = dir.join("golden.json");

    fs::copy(fixture("codec_v1.rs"), &staged).unwrap();
    let (code, _) = run_analyze(&[&staged, &"--schema", &golden, &"--bless-schema"]);
    assert_eq!(code, 0, "blessing must succeed");
    let blessed = fs::read_to_string(&golden).unwrap();
    assert!(blessed.contains("\"fn\":\"encode\""), "{blessed}");
    assert!(blessed.contains("\"ops\":\"u32,u64\""), "{blessed}");

    // Unchanged codec against its own golden: clean.
    let (code, json) = run_analyze(&[&staged, &"--schema", &golden]);
    assert_eq!(code, 0, "{json}");

    // Reordered fields: same ops, different order, flagged at the fn decl.
    fs::copy(fixture("codec_v2.rs"), &staged).unwrap();
    let (code, json) = run_analyze(&[&staged, &"--schema", &golden]);
    assert_eq!(code, 1);
    assert_eq!(rules_in(&json), vec!["wire-format-drift"], "{json}");
    assert_eq!(spans_in(&json), vec![(19, 8)], "{json}");
    assert!(json.contains("ops now: u64,u32"), "{json}");
    assert!(json.contains("--bless-schema"), "{json}");

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_fixture_passes_the_semantic_passes_too() {
    let path = fixture("clean.rs");
    let (code, json) = run_analyze(&[&path]);
    assert_eq!(code, 0, "{json}");
    assert_eq!(json.trim(), "[]");
}

#[test]
fn whole_workspace_analyzes_clean() {
    // The same invocation CI runs: graph passes, registry, and the golden
    // wire schema must all hold on the tree itself.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["analyze", "--root"])
        .arg(&root)
        .output()
        .expect("spawn xtask binary");
    assert!(
        out.status.success(),
        "workspace analyze failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
