//! Known-bad fixture: must trip exactly `no-ambient-entropy`.
//!
//! Not compiled — parsed by the analyzer self-test only.

use std::time::Instant;

pub fn epoch_deadline_s() -> f64 {
    let started = Instant::now();
    let budget = std::env::var("EPOCH_BUDGET_S");
    let _ = (started, budget);
    30.0
}
