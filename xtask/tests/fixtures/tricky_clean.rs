//! Fixture: lexically treacherous but rule-clean. Raw strings with fences,
//! nested block comments, lifetime ticks next to char literals — every
//! banned spelling below lives inside text the lexer must hide, so the
//! strict policy has to report zero findings.

/* outer /* nested: .unwrap() and HashMap and thread_rng() in a comment */ outer */

/// Doc text mentioning panic!("never") and SystemTime::now() is inert too.
pub struct Holder<'a> {
    text: &'a str,
}

pub fn tricky<'x>(h: &Holder<'x>) -> String {
    let plain = "HashMap::new().iter() and .unwrap() in a plain string";
    let raw = r#"raw with panic!("no") and rand::thread_rng()"#;
    let fenced = r##"fences: "# not the end, .expect("still text") "##;
    let bytes = b"unordered HashSet bytes";
    let tick = '\'';
    let newline = '\n';
    let borrowed: &'x str = h.text;
    format!("{plain}{raw}{fenced}{tick}{newline}{borrowed}{:?}", bytes)
}
