//! Fixture: wire codec, blessed field order (`x: u32` before `y: u64`).
//! `codec_v2.rs` is the same codec with the fields swapped; the drift test
//! blesses this file's schema and analyzes v2 against it.

struct Enc<'a> {
    b: &'a mut Vec<u8>,
}

impl<'a> Enc<'a> {
    fn u32(&mut self, v: u32) {
        self.b.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.b.extend_from_slice(&v.to_le_bytes());
    }
}

// analyze:codec -- fixture wire format
pub fn encode(b: &mut Vec<u8>, x: u32, y: u64) {
    let mut e = Enc { b };
    e.u32(x);
    e.u64(y);
}
