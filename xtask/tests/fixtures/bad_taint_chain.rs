//! Fixture: a nondeterminism source two calls away from an
//! ordering-sensitive sink. The lexical allow silences `no-ambient-entropy`
//! at the source, but taint still propagates — local justification does not
//! launder reachability into a registered sink.

use std::time::Instant;

fn noisy() -> Instant {
    // lint:allow(no-ambient-entropy) -- fixture: justified locally, still a taint source
    Instant::now()
}

fn mid() -> Instant {
    noisy()
}

// analyze:sink(emit) -- fixture: emitted bytes must replay bit-identically
pub fn emit(out: &mut Vec<u8>) {
    let _ = mid();
    out.push(0);
}
