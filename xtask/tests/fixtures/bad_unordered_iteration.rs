//! Known-bad fixture: must trip exactly `no-unordered-iteration`.
//!
//! Not compiled — parsed by the analyzer self-test only.

use std::collections::HashMap;

pub fn tally(xs: &[u64]) -> usize {
    let mut seen = HashMap::new();
    for &x in xs {
        seen.insert(x, ());
    }
    seen.len()
}
