//! Known-bad fixture: must trip exactly `no-panic-in-libs` (five findings),
//! with the `#[cfg(test)]` module and the justified lint:allow exempt.
//!
//! Not compiled — parsed by the analyzer self-test only.

pub fn head(v: &[u64], alt: Option<u64>) -> u64 {
    if v.is_empty() {
        alt.unwrap();
        alt.expect("alt must be set for empty input");
        panic!("no head");
    }
    if v.len() > 3 {
        todo!();
    }
    v[0]
}

pub fn justified(v: &[u64; 2]) -> u64 {
    // lint:allow(no-panic-in-libs) -- fixed-size array, index is total
    v[1]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_here_is_fine() {
        let x: Option<u64> = Some(1);
        x.unwrap();
    }
}
