//! Known-bad fixture: must trip exactly `float-association` (two findings).
//!
//! Not compiled — parsed by the analyzer self-test only.

pub fn parallel_cut(weights: &[f64]) -> f64 {
    let total: f64 = weights.par_iter().sum();
    let folded = weights.par_chunks(64).fold(0.0, add_chunk);
    total + folded
}
