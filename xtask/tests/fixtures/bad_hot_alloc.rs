//! Fixture: a registered hot path reaching an allocating helper one call
//! down. The banned construct is in the helper, not the annotated fn — the
//! closure walk must carry the blame path back to the root.

// analyze:hot-path -- fixture: the warm loop must stay allocation-free
pub fn warm(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = 0;
    }
    helper();
}

fn helper() -> Vec<u8> {
    Vec::with_capacity(4)
}
