//! Clean fixture: every rule active, zero findings expected.
//!
//! Not compiled — parsed by the analyzer self-test only.

use std::collections::BTreeMap;

pub fn deterministic_tally(xs: &[u64]) -> Result<u64, String> {
    let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
    for &x in xs {
        *seen.entry(x).or_insert(0) += 1;
    }
    let first = xs.first().copied().ok_or_else(|| "empty input".to_string())?;
    let total: u64 = seen.values().sum();
    Ok(first + total)
}

pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub fn ordered_sum(v: &[f64]) -> f64 {
    v.iter().sum::<f64>()
}
