//! Fixture: `codec_v1.rs` with the two fields reordered — byte-compatible
//! with nothing that decoded v1. The analyzer must flag the fingerprint
//! change against v1's blessed golden.

struct Enc<'a> {
    b: &'a mut Vec<u8>,
}

impl<'a> Enc<'a> {
    fn u32(&mut self, v: u32) {
        self.b.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.b.extend_from_slice(&v.to_le_bytes());
    }
}

// analyze:codec -- fixture wire format
pub fn encode(b: &mut Vec<u8>, x: u32, y: u64) {
    let mut e = Enc { b };
    e.u64(y);
    e.u32(x);
}
