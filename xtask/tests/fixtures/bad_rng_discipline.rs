//! Known-bad fixture: must trip exactly `rng-discipline`.
//!
//! Not compiled — parsed by the analyzer self-test only.

pub fn branch_rng() -> StdRng {
    StdRng::from_entropy()
}
